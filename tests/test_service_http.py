"""HTTP front end: end-to-end encodes over a real socket.

The server under test binds port 0 (ephemeral) and runs on a background
thread; requests go through ``urllib`` so the whole stack — request
parsing, image sniffing, scheduler, pool, cache, response headers — is
exercised exactly as a client sees it.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.image.bmp import write_bmp
from repro.image.pnm import write_pnm
from repro.image.synthetic import watch_face_image
from repro.jpeg2000.decoder import decode
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.params import EncoderParams
from repro.service import EncodeService, ServiceConfig
from repro.service.http import make_server, params_from_query


@pytest.fixture(scope="module")
def server():
    service = EncodeService(ServiceConfig(workers=2, max_queue=8))
    srv = make_server(service, port=0, quiet=True)
    thread = threading.Thread(
        target=srv.serve_forever, kwargs={"poll_interval": 0.05}
    )
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    service.close()
    thread.join()


@pytest.fixture(scope="module")
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


@pytest.fixture(scope="module")
def pgm_bytes(tmp_path_factory):
    path = tmp_path_factory.mktemp("http") / "in.pgm"
    write_pnm(str(path), watch_face_image(48, 48, channels=1))
    return path.read_bytes()


def _post(url: str, body: bytes):
    req = urllib.request.Request(url, data=body, method="POST")
    return urllib.request.urlopen(req, timeout=60)


class TestEncodeEndpoint:
    def test_pgm_roundtrip_matches_offline(self, base_url, pgm_bytes):
        img = watch_face_image(48, 48, channels=1)
        offline = encode(img, EncoderParams(levels=3)).codestream
        with _post(f"{base_url}/encode?levels=3", pgm_bytes) as resp:
            body = resp.read()
            assert resp.status == 200
            assert resp.headers["X-Cache"] == "MISS"
            assert resp.headers["Content-Type"] == "image/x-jpeg2000-codestream"
        assert body == offline
        assert np.array_equal(decode(body), img)

    def test_second_request_hits_cache(self, base_url, pgm_bytes):
        with _post(f"{base_url}/encode?levels=3", pgm_bytes) as resp:
            first = resp.read()
        with _post(f"{base_url}/encode?levels=3", pgm_bytes) as resp:
            assert resp.headers["X-Cache"] == "HIT"
            assert resp.read() == first

    def test_bmp_body_and_lossy_params(self, base_url, tmp_path):
        img = watch_face_image(48, 48, channels=3)
        path = tmp_path / "in.bmp"
        write_bmp(str(path), img)
        offline = encode(img, EncoderParams(lossless=False, rate=0.3)).codestream
        with _post(f"{base_url}/encode?rate=0.3", path.read_bytes()) as resp:
            assert resp.read() == offline

    def test_tiled_encode_matches_offline(self, base_url, pgm_bytes):
        img = watch_face_image(48, 48, channels=1)
        offline = encode(
            img, EncoderParams(tile_size=16, progression="RPCL")
        ).codestream
        url = f"{base_url}/encode?tile=16&progression=rpcl"
        with _post(url, pgm_bytes) as resp:
            body = resp.read()
        assert body == offline
        assert np.array_equal(decode(body), img)

    def test_16bit_pgm_upload_encodes(self, base_url):
        from repro.image.pnm import dump_pnm

        img = (watch_face_image(32, 32, channels=1).astype(np.uint16) * 257)
        offline = encode(img, EncoderParams(levels=2)).codestream
        with _post(f"{base_url}/encode?levels=2", dump_pnm(img)) as resp:
            body = resp.read()
        assert body == offline
        out = decode(body)
        assert out.dtype == np.uint16
        assert np.array_equal(out, img)

    def test_bad_body_is_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base_url}/encode", b"this is not an image")
        assert err.value.code == 400
        payload = json.load(err.value)
        assert "unrecognized image format" in payload["error"]
        assert payload["reason"] == "bad-magic"

    def test_unsupported_maxval_is_structured_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base_url}/encode", b"P5\n2 2\n70000\n" + b"\0" * 8)
        assert err.value.code == 400
        assert json.load(err.value)["reason"] == "bad-maxval"

    def test_empty_body_is_400(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base_url}/encode", b"")
        assert err.value.code == 400

    def test_bad_params_are_400(self, base_url, pgm_bytes):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base_url}/encode?rate=7.0", pgm_bytes)
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base_url}/encode?bogus=1", pgm_bytes)
        assert err.value.code == 400

    def test_queue_full_is_503_with_retry_after(self, base_url, server):
        service = server.service
        # Saturate admission so the next uncached encode sheds.
        slots = 0
        while service.admission.try_acquire():
            slots += 1
        try:
            unique = watch_face_image(40, 40, channels=1)
            header = b"P5\n40 40\n255\n"
            body = header + unique.tobytes()
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(f"{base_url}/encode?levels=2", body)
            assert err.value.code == 503
            assert err.value.headers["Retry-After"] == "1"
        finally:
            for _ in range(slots):
                service.admission.release()

    def test_unknown_paths_are_404(self, base_url, pgm_bytes):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{base_url}/nope", timeout=10)
        assert err.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base_url}/nope", pgm_bytes)
        assert err.value.code == 404


class TestVerifyParam:
    def test_verified_encode_succeeds(self, base_url, pgm_bytes):
        with _post(f"{base_url}/encode?levels=2&verify=1", pgm_bytes) as resp:
            assert resp.status == 200
            assert resp.headers["X-Verified"] == "roundtrip"
            body = resp.read()
        img = watch_face_image(48, 48, channels=1)
        assert np.array_equal(decode(body), img)

    def test_verify_counts_in_metrics(self, base_url, pgm_bytes):
        with _post(f"{base_url}/encode?levels=2&verify=1", pgm_bytes):
            pass
        with urllib.request.urlopen(f"{base_url}/metrics", timeout=30) as resp:
            metrics = json.load(resp)
        assert metrics["verified_total"]["value"] >= 1
        assert metrics["verify_failures_total"]["value"] == 0

    def test_verified_cache_hit_still_verifies(self, base_url, pgm_bytes):
        with _post(f"{base_url}/encode?levels=2&verify=1", pgm_bytes):
            pass
        with _post(f"{base_url}/encode?levels=2&verify=1", pgm_bytes) as resp:
            assert resp.headers["X-Cache"] == "HIT"
            assert resp.headers["X-Verified"] == "roundtrip"

    def test_unverified_requests_have_no_header(self, base_url, pgm_bytes):
        with _post(f"{base_url}/encode?levels=2", pgm_bytes) as resp:
            assert resp.headers.get("X-Verified") is None

    def test_failed_verification_is_422(self, base_url, pgm_bytes,
                                        monkeypatch):
        from repro.verify.roundtrip import VerificationError

        def boom(image, codestream, params=None, floor=None):
            raise VerificationError(
                "forced failure", {"kind": "lossy", "psnr_db": 1.0}
            )

        monkeypatch.setattr("repro.verify.roundtrip.verify_roundtrip", boom)
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base_url}/encode?levels=2&verify=1", pgm_bytes)
        assert err.value.code == 422
        payload = json.load(err.value)
        assert "forced failure" in payload["error"]
        assert payload["verify"]["kind"] == "lossy"

    def test_verify_failure_metric_increments(self, base_url, pgm_bytes,
                                              monkeypatch):
        from repro.verify.roundtrip import VerificationError

        def boom(image, codestream, params=None, floor=None):
            raise VerificationError("forced", {})

        monkeypatch.setattr("repro.verify.roundtrip.verify_roundtrip", boom)
        with pytest.raises(urllib.error.HTTPError):
            _post(f"{base_url}/encode?levels=2&verify=1", pgm_bytes)
        with urllib.request.urlopen(f"{base_url}/metrics", timeout=30) as resp:
            metrics = json.load(resp)
        assert metrics["verify_failures_total"]["value"] >= 1


class TestObservabilityEndpoints:
    def test_healthz(self, base_url):
        with urllib.request.urlopen(f"{base_url}/healthz", timeout=30) as resp:
            assert resp.status == 200
            assert json.load(resp) == {"status": "ok"}

    def test_metrics_shape(self, base_url, pgm_bytes):
        with _post(f"{base_url}/encode?levels=3", pgm_bytes):
            pass
        with urllib.request.urlopen(f"{base_url}/metrics", timeout=30) as resp:
            metrics = json.load(resp)
        assert metrics["requests_total"]["value"] >= 1
        lat = metrics["request_seconds"]
        assert lat["type"] == "histogram"
        assert lat["count"] >= 1
        assert lat["p95"] >= lat["p50"] >= 0
        assert any(b["le"] == "inf" for b in lat["buckets"])

    def test_stats_shape(self, base_url):
        with urllib.request.urlopen(f"{base_url}/stats", timeout=30) as resp:
            stats = json.load(resp)
        assert stats["pool"]["workers"] == 2
        assert set(stats) >= {"pool", "scheduler", "cache", "admission"}


class TestQueryParsing:
    def test_defaults(self):
        params, priority = params_from_query("")
        assert params == EncoderParams.lossless_default()
        assert priority == 0

    def test_lossy_and_priority(self):
        params, priority = params_from_query("lossy=1&levels=3&priority=7")
        assert params.lossless is False and params.levels == 3
        assert priority == 7

    def test_rate_implies_lossy(self):
        params, _ = params_from_query("rate=0.1")
        assert params.lossless is False and params.rate == 0.1

    def test_unknown_key_raises(self):
        with pytest.raises(ValueError, match="unknown query"):
            params_from_query("speed=11")

    def test_verify_key_is_accepted(self):
        params, priority = params_from_query("verify=1&levels=3")
        assert params.levels == 3 and priority == 0

    def test_tiling_keys(self):
        params, _ = params_from_query(
            "tile=256&precinct=512&progression=pcrl&mem_budget=64"
        )
        assert params.tile_size == 256
        assert params.precinct_size == 512
        assert params.progression == "PCRL"
        assert params.mem_budget == 64 * 2**20


class TestDecodeEndpoint:
    @pytest.fixture(scope="class")
    def rgb_stream(self):
        img = watch_face_image(40, 56, channels=3)
        return img, encode(img, EncoderParams(levels=2)).codestream

    def test_decode_roundtrip(self, base_url, rgb_stream):
        from repro.image.pnm import parse_pnm

        img, cs = rgb_stream
        with _post(f"{base_url}/decode?backend=batched", cs) as resp:
            body = resp.read()
            assert resp.status == 200
            assert resp.headers["Content-Type"] == "image/x-portable-pixmap"
            assert resp.headers["X-Backend"] == "batched"
            assert float(resp.headers["X-Decode-Seconds"]) >= 0.0
        assert np.array_equal(parse_pnm(body), img)

    def test_second_decode_hits_cache(self, base_url, rgb_stream):
        _, cs = rgb_stream
        with _post(f"{base_url}/decode", cs) as resp:
            first = resp.read()
        with _post(f"{base_url}/decode", cs) as resp:
            assert resp.headers["X-Cache"] == "HIT"
            assert resp.read() == first

    def test_16bit_decode_served_as_16bit_pgm(self, base_url):
        from repro.image.pnm import parse_pnm

        img = (watch_face_image(24, 24, channels=1).astype(np.uint16) * 257)
        cs = encode(img, EncoderParams(levels=2)).codestream
        with _post(f"{base_url}/decode", cs) as resp:
            assert resp.headers["Content-Type"] == "image/x-portable-graymap"
            out = parse_pnm(resp.read())
        assert out.dtype == np.uint16
        assert np.array_equal(out, img)

    def test_grayscale_is_pgm(self, base_url):
        from repro.image.pnm import parse_pnm

        img = watch_face_image(32, 32, channels=1)
        cs = encode(img, EncoderParams(levels=2)).codestream
        with _post(f"{base_url}/decode", cs) as resp:
            assert resp.headers["Content-Type"] == "image/x-portable-graymap"
            assert np.array_equal(parse_pnm(resp.read()), img)

    def test_malformed_codestream_is_400_typed(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base_url}/decode", b"\x00" * 64)
        assert err.value.code == 400
        assert "Error" in json.load(err.value)["error"]  # typed class name

    def test_bad_backend_is_400(self, base_url, rgb_stream):
        _, cs = rgb_stream
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base_url}/decode?backend=turbo", cs)
        assert err.value.code == 400

    def test_unknown_query_key_is_400(self, base_url, rgb_stream):
        _, cs = rgb_stream
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(f"{base_url}/decode?speed=11", cs)
        assert err.value.code == 400

    def test_decode_metrics_exported(self, base_url, rgb_stream):
        _, cs = rgb_stream
        with _post(f"{base_url}/decode", cs):
            pass
        with urllib.request.urlopen(f"{base_url}/metrics", timeout=30) as resp:
            metrics = json.load(resp)
        assert metrics["decode_requests_total"]["value"] >= 1
        assert metrics["images_decoded_total"]["value"] >= 1
        assert metrics["decode_seconds"]["count"] >= 1

    def test_verify_seconds_histogram(self, base_url, pgm_bytes):
        with _post(f"{base_url}/encode?levels=3&verify=1", pgm_bytes):
            pass
        with urllib.request.urlopen(f"{base_url}/metrics", timeout=30) as resp:
            metrics = json.load(resp)
        vs = metrics["verify_seconds"]
        assert vs["type"] == "histogram"
        assert vs["count"] >= 1
