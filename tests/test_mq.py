"""MQ arithmetic coder tests: round trips, truncation, adaptation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg2000.mq import MQDecoder, MQEncoder, STATE_TABLE


class TestStateTable:
    def test_has_47_states(self):
        assert len(STATE_TABLE) == 47

    def test_paper_relevant_qe_values(self):
        assert STATE_TABLE[0][0] == 0x5601
        assert STATE_TABLE[46][0] == 0x5601  # uniform state

    def test_transitions_in_range(self):
        for qe, nmps, nlps, switch in STATE_TABLE:
            assert 0 < qe <= 0x5601
            assert 0 <= nmps < 47 and 0 <= nlps < 47
            assert switch in (0, 1)

    def test_terminal_state_self_loops(self):
        qe, nmps, nlps, switch = STATE_TABLE[46]
        assert nmps == 46 and nlps == 46


class TestRoundTrip:
    def test_empty_stream(self):
        enc = MQEncoder(1)
        data = enc.flush()
        MQDecoder(data, 1)  # must construct without error

    def test_single_bits(self):
        for bit in (0, 1):
            enc = MQEncoder(1)
            enc.encode(bit, 0)
            dec = MQDecoder(enc.flush(), 1)
            assert dec.decode(0) == bit

    def test_alternating(self):
        bits = [i % 2 for i in range(100)]
        enc = MQEncoder(2)
        for i, b in enumerate(bits):
            enc.encode(b, i % 2)
        dec = MQDecoder(enc.flush(), 2)
        assert [dec.decode(i % 2) for i in range(100)] == bits

    def test_all_zero_compresses_well(self):
        enc = MQEncoder(1)
        for _ in range(10000):
            enc.encode(0, 0)
        data = enc.flush()
        assert len(data) < 40  # adaptive coder should crush a constant

    def test_random_incompressible(self):
        rng = random.Random(0)
        bits = [rng.randint(0, 1) for _ in range(8000)]
        enc = MQEncoder(1)
        for b in bits:
            enc.encode(b, 0)
        data = enc.flush()
        assert len(data) > 900  # can't beat entropy
        dec = MQDecoder(data, 1)
        assert [dec.decode(0) for _ in bits] == bits

    def test_double_flush_idempotent(self):
        enc = MQEncoder(1)
        enc.encode(1, 0)
        assert enc.flush() == enc.flush()

    def test_encode_after_flush_raises(self):
        enc = MQEncoder(1)
        enc.flush()
        with pytest.raises(RuntimeError):
            enc.encode(0, 0)

    def test_initial_states_respected(self):
        # starting ctx 0 at state 46 (uniform) costs ~1 bit/symbol
        enc = MQEncoder(1, {0: 46})
        for _ in range(800):
            enc.encode(0, 0)
        uniform_len = len(enc.flush())
        enc2 = MQEncoder(1)
        for _ in range(800):
            enc2.encode(0, 0)
        adaptive_len = len(enc2.flush())
        assert uniform_len > 5 * adaptive_len

    @given(
        st.lists(st.tuples(st.integers(0, 1), st.integers(0, 18)), max_size=500),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, pairs):
        enc = MQEncoder(19)
        for bit, cx in pairs:
            enc.encode(bit, cx)
        dec = MQDecoder(enc.flush(), 19)
        assert [dec.decode(cx) for _, cx in pairs] == [b for b, _ in pairs]


class TestTruncation:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_safe_length_decodes_prefix(self, seed):
        rng = random.Random(seed)
        n = rng.randint(12, 300)
        bits = [1 if rng.random() < 0.2 else 0 for _ in range(n)]
        cxs = [rng.randrange(4) for _ in range(n)]
        enc = MQEncoder(4)
        safe = []
        for b, c in zip(bits, cxs):
            enc.encode(b, c)
            safe.append(enc.safe_length())
        data = enc.flush()
        k = rng.randrange(1, n)
        trunc = data[: min(safe[k - 1], len(data))]
        dec = MQDecoder(trunc, 4)
        assert [dec.decode(c) for c in cxs[:k]] == bits[:k]

    def test_safe_length_monotone(self):
        rng = random.Random(1)
        enc = MQEncoder(2)
        prev = 0
        for _ in range(500):
            enc.encode(rng.randint(0, 1), rng.randint(0, 1))
            cur = enc.safe_length()
            assert cur >= prev
            prev = cur

    def test_decoder_survives_empty_data(self):
        dec = MQDecoder(b"", 1)
        # decodes *something* without crashing (all-1 fill)
        for _ in range(50):
            assert dec.decode(0) in (0, 1)
