"""Differential tests: vectorized Tier-1 backend vs. the scalar oracle.

The vectorized coder must reproduce the reference coder *exactly* — every
stream byte, pass boundary, symbol count, and distortion float — because
rate control and the Cell performance model consume all of them.  These
tests sweep the shapes/coefficient profiles named in the issue plus
randomized blocks via hypothesis.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg2000 import tier1
from repro.jpeg2000.mq import MQEncoder
from repro.jpeg2000.tier1 import (
    decode_codeblock,
    encode_codeblock,
    encode_codeblock_reference,
    resolve_backend,
)
from repro.jpeg2000.tier1_vec import encode_codeblock_vectorized

BANDS = ["LL", "HL", "LH", "HH"]
ISSUE_SHAPES = [(1, 1), (3, 5), (5, 7), (33, 64), (64, 64)]


def assert_identical(cb: np.ndarray, band: str) -> None:
    ref = encode_codeblock_reference(cb, band)
    vec = encode_codeblock_vectorized(cb, band)
    assert vec.data == ref.data
    assert vec.msbs == ref.msbs
    assert vec.num_passes == ref.num_passes
    assert vec.pass_types == ref.pass_types
    assert vec.pass_lengths == ref.pass_lengths
    assert vec.pass_symbols == ref.pass_symbols
    assert vec.pass_dist == ref.pass_dist  # exact float equality, on purpose
    assert vec == ref


def profile_block(rng, shape, profile: str) -> np.ndarray:
    h, w = shape
    if profile == "sparse":
        cb = np.zeros(shape, dtype=np.int32)
        k = max(1, (h * w) // 8)
        idx = rng.choice(h * w, size=k, replace=False)
        cb.ravel()[idx] = rng.integers(-500, 500, size=k)
        return cb
    if profile == "dense":
        return rng.integers(-2000, 2000, size=shape).astype(np.int32)
    if profile == "negative":
        return rng.integers(-4000, -1, size=shape).astype(np.int32)
    raise AssertionError(profile)


class TestDifferential:
    @pytest.mark.parametrize("band", BANDS)
    @pytest.mark.parametrize("shape", ISSUE_SHAPES)
    @pytest.mark.parametrize("profile", ["sparse", "dense", "negative"])
    def test_issue_matrix(self, band, shape, profile):
        rng = np.random.default_rng((hash((band, shape, profile))) % 2**32)
        assert_identical(profile_block(rng, shape, profile), band)

    @pytest.mark.parametrize("band", BANDS)
    def test_all_zero(self, band):
        assert_identical(np.zeros((8, 8), dtype=np.int32), band)
        assert_identical(np.zeros((1, 1), dtype=np.int32), band)

    @pytest.mark.parametrize("band", BANDS)
    def test_single_coefficient(self, band):
        cb = np.zeros((4, 4), dtype=np.int32)
        cb[2, 1] = -7
        assert_identical(cb, band)

    def test_stripe_remainders(self):
        # Heights 1..9 cross every 4-row stripe remainder case.
        rng = np.random.default_rng(11)
        for h in range(1, 10):
            cb = rng.integers(-64, 64, size=(h, 6)).astype(np.int32)
            assert_identical(cb, "HH")

    @settings(max_examples=60, deadline=None)
    @given(
        h=st.integers(1, 16),
        w=st.integers(1, 16),
        band=st.sampled_from(BANDS),
        mag=st.sampled_from([1, 7, 255, 4095]),
        seed=st.integers(0, 2**31),
    )
    def test_randomized(self, h, w, band, mag, seed):
        rng = np.random.default_rng(seed)
        cb = rng.integers(-mag, mag + 1, size=(h, w)).astype(np.int32)
        assert_identical(cb, band)

    @pytest.mark.parametrize("band", BANDS)
    def test_vectorized_roundtrips(self, band):
        rng = np.random.default_rng(5)
        cb = rng.integers(-300, 300, size=(13, 10)).astype(np.int32)
        res = encode_codeblock_vectorized(cb, band)
        out = decode_codeblock(res.data, 13, 10, band, res.msbs, res.num_passes)
        assert np.array_equal(out, cb)


class TestBackendSelection:
    def test_explicit_backends_agree(self):
        rng = np.random.default_rng(9)
        cb = rng.integers(-100, 100, size=(12, 12)).astype(np.int32)
        a = encode_codeblock(cb, "LL", backend="reference")
        b = encode_codeblock(cb, "LL", backend="vectorized")
        c = encode_codeblock(cb, "LL", backend="auto")
        d = encode_codeblock(cb, "LL")
        assert a == b == c == d

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            encode_codeblock(np.zeros((2, 2), np.int32), "LL", backend="simd")

    def test_env_var_steers_auto(self, monkeypatch):
        monkeypatch.setenv(tier1.BACKEND_ENV_VAR, "reference")
        assert resolve_backend("auto") == "reference"
        assert resolve_backend(None) == "reference"
        # Explicit names win over the environment.
        assert resolve_backend("vectorized") == "vectorized"
        monkeypatch.setenv(tier1.BACKEND_ENV_VAR, "bogus")
        with pytest.raises(ValueError, match="REPRO_TIER1_BACKEND"):
            resolve_backend("auto")

    def test_auto_picks_scalar_for_tiny_blocks(self, monkeypatch):
        monkeypatch.delenv(tier1.BACKEND_ENV_VAR, raising=False)
        calls = []
        real = encode_codeblock_reference
        monkeypatch.setattr(
            tier1, "encode_codeblock_reference",
            lambda cb, band: calls.append(cb.shape) or real(cb, band),
        )
        encode_codeblock(np.ones((2, 2), np.int32), "LL")  # 4 < threshold
        assert calls == [(2, 2)]


class TestNeighbourIndices:
    def test_cached_array_is_readonly(self):
        nbr = tier1._neighbour_indices(5, 7)
        assert isinstance(nbr, np.ndarray)
        assert nbr.shape == (35, 8)
        assert not nbr.flags.writeable
        with pytest.raises(ValueError):
            nbr[0, 0] = 1
        assert tier1._neighbour_indices(5, 7) is nbr  # lru_cache hit

    def test_neighbour_semantics(self):
        # 2x2 grid, flat order [0 1 / 2 3]; sample 0 has E=1, S=2, SE=3 and
        # no W/N/NW/NE/SW (marked with the out-of-block sentinel).
        nbr = tier1._neighbour_indices(2, 2)
        w, e, n, s, nw, ne, sw, se = nbr[0]
        assert (e, s, se) == (1, 2, 3)
        sentinel = 4  # == h*w, the always-insignificant padding slot
        assert all(x == sentinel for x in (w, n, nw, ne, sw))


class TestEncodeRunParity:
    """The batched MQ entry point must equal symbol-at-a-time coding."""

    def _stream(self, seed, n=600):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=n).astype(np.uint8)
        ctxs = rng.integers(0, 19, size=n).astype(np.uint8)
        return bits, ctxs

    def _run(self, bits, ctxs, batched, chunk=None):
        enc = MQEncoder(19, initial_states=tier1.INITIAL_STATES)
        if batched:
            if chunk:
                for i in range(0, len(bits), chunk):
                    enc.encode_run(bits[i : i + chunk], ctxs[i : i + chunk])
            else:
                enc.encode_run(bits, ctxs)
        else:
            for b, c in zip(bits, ctxs):
                enc.encode(int(b), int(c))
        return enc.flush()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batched_equals_serial(self, seed):
        bits, ctxs = self._stream(seed)
        assert self._run(bits, ctxs, True) == self._run(bits, ctxs, False)

    def test_chunked_runs_equal_one_run(self):
        bits, ctxs = self._stream(3)
        assert self._run(bits, ctxs, True, chunk=37) == self._run(
            bits, ctxs, True
        )

    def test_python_fallback_matches_native(self, monkeypatch):
        from repro.jpeg2000 import _mq_native

        bits, ctxs = self._stream(4)
        with_native = self._run(bits, ctxs, True)
        monkeypatch.setattr(_mq_native, "native_encode_run", None)
        assert self._run(bits, ctxs, True) == with_native

    def test_rejects_bad_input(self):
        enc = MQEncoder(19, initial_states=tier1.INITIAL_STATES)
        with pytest.raises(ValueError, match="length mismatch"):
            enc.encode_run(b"\x00\x01", b"\x00")
        with pytest.raises(IndexError, match="context"):
            enc.encode_run(b"\x00", b"\x7f")
        enc.encode_run(b"", b"")  # empty run is a no-op
        enc.encode(1, 0)
        enc.flush()
        with pytest.raises(RuntimeError, match="flushed"):
            enc.encode_run(b"\x00", b"\x00")


@pytest.mark.skipif(
    os.environ.get("REPRO_MQ_NATIVE", "1") == "0",
    reason="native kernel disabled via environment",
)
def test_native_kernel_optionality():
    """With the kernel force-disabled, everything still encodes."""
    import subprocess
    import sys

    code = (
        "import numpy as np;"
        "from repro.jpeg2000 import _mq_native;"
        "assert _mq_native.native_encode_run is None;"
        "from repro.jpeg2000.tier1 import encode_codeblock;"
        "from repro.jpeg2000.tier1_vec import encode_codeblock_vectorized;"
        "cb = np.arange(-32, 32, dtype=np.int32).reshape(8, 8);"
        "assert encode_codeblock_vectorized(cb, 'HL') == "
        "encode_codeblock(cb, 'HL', backend='reference')"
    )
    env = dict(os.environ, REPRO_MQ_NATIVE="0",
               PYTHONPATH=os.pathsep.join(__import__("sys").path))
    subprocess.run([sys.executable, "-c", code], check=True, env=env)
