"""SPE / PPE core model tests — the paper's qualitative core orderings."""

import pytest

from repro.cell.isa import InstrClass, InstructionMix
from repro.cell.ppe import PPECore
from repro.cell.spe import SPECore
from repro.core.calibration import DEFAULT_CALIBRATION
from repro.kernels.dwt_kernels import dwt_mix
from repro.kernels.tier1_kernel import tier1_symbol_mix

SPE = SPECore()
PPE = PPECore()


class TestSPECore:
    def test_simd_divides_by_lanes(self):
        mix_v = InstructionMix(ops={InstrClass.ADD: 4.0}, vectorizable=True)
        mix_s = InstructionMix(ops={InstrClass.ADD: 4.0}, vectorizable=False)
        assert SPE.cycles_per_element(mix_v) == pytest.approx(
            SPE.cycles_per_element(mix_s) / 4
        )

    def test_dual_issue_max_of_pipes(self):
        even_only = InstructionMix(ops={InstrClass.ADD: 4.0}, vectorizable=False)
        balanced = InstructionMix(
            ops={InstrClass.ADD: 4.0, InstrClass.LOAD: 4.0}, vectorizable=False
        )
        # odd-pipe work issues in parallel: no extra cycles
        assert SPE.cycles_per_element(balanced) == pytest.approx(
            SPE.cycles_per_element(even_only)
        )

    def test_branches_cost_miss_penalty(self):
        base = InstructionMix(ops={InstrClass.ADD: 1.0})
        branchy = InstructionMix(ops={InstrClass.ADD: 1.0}, branches=1.0,
                                 branch_miss_rate=1.0)
        delta = SPE.cycles_per_element(branchy) - SPE.cycles_per_element(base)
        assert delta == pytest.approx(1.0 + SPE.isa.branch_miss_penalty)

    def test_dependency_limited_pays_latency(self):
        mix = InstructionMix(ops={InstrClass.FM: 2.0}, vectorizable=False,
                             dependency_limited=True)
        assert SPE.cycles_per_element(mix) == pytest.approx(12.0)

    def test_dependency_factor_interpolates(self):
        lo = InstructionMix(ops={InstrClass.FM: 2.0}, vectorizable=False)
        hi = InstructionMix(ops={InstrClass.FM: 2.0}, vectorizable=False,
                            dependency_factor=1.0)
        mid = InstructionMix(ops={InstrClass.FM: 2.0}, vectorizable=False,
                             dependency_factor=0.5)
        c_lo, c_mid, c_hi = map(SPE.cycles_per_element, (lo, mid, hi))
        assert c_lo < c_mid < c_hi
        assert c_mid == pytest.approx((c_lo + c_hi) / 2)

    def test_simd_efficiency_validated(self):
        bad = InstructionMix(ops={InstrClass.ADD: 1.0}, simd_efficiency=0.0)
        with pytest.raises(ValueError):
            SPE.cycles_per_element(bad)

    def test_kernel_time_linear(self):
        mix = dwt_mix(True)
        assert SPE.kernel_time(mix, 2000) == pytest.approx(2 * SPE.kernel_time(mix, 1000))

    def test_negative_elements_rejected(self):
        with pytest.raises(ValueError):
            SPE.kernel_time(dwt_mix(True), -1)


class TestPPECore:
    def test_smt_second_thread_helps_but_sublinearly(self):
        mix = tier1_symbol_mix()
        one = PPE.kernel_time(mix, 10000, smt_threads=1)
        two = PPE.kernel_time(mix, 10000, smt_threads=2)
        assert one / 2 < two < one

    def test_rejects_three_threads(self):
        with pytest.raises(ValueError):
            PPE.kernel_time(tier1_symbol_mix(), 10, smt_threads=3)

    def test_scalar_no_simd_benefit(self):
        mix_v = InstructionMix(ops={InstrClass.ADD: 4.0}, vectorizable=True)
        mix_s = InstructionMix(ops={InstrClass.ADD: 4.0}, vectorizable=False)
        assert PPE.cycles_per_element(mix_v) == PPE.cycles_per_element(mix_s)


class TestPaperOrderings:
    """Section 5.1's qualitative results about core strengths."""

    def test_ppe_faster_than_spe_on_tier1(self):
        """'the PPE runs the code faster than the SPE for Tier-1 encoding'"""
        mix = tier1_symbol_mix(DEFAULT_CALIBRATION)
        assert PPE.seconds_per_element(mix) < SPE.seconds_per_element(mix)

    def test_ppe_advantage_is_modest(self):
        mix = tier1_symbol_mix(DEFAULT_CALIBRATION)
        ratio = SPE.seconds_per_element(mix) / PPE.seconds_per_element(mix)
        assert 1.05 < ratio < 2.5

    def test_spe_faster_than_ppe_on_dwt_compute(self):
        """'In the case of the DWT, 1 SPE case outperforms 1 PPE only case
        by far' — at the pure-compute level the SIMD advantage already
        shows; the full stage-level gap (with the PPE's cache-bandwidth
        ceiling) is asserted in the pipeline tests."""
        mix = dwt_mix(True, calibration=DEFAULT_CALIBRATION)
        ratio = PPE.seconds_per_element(mix) / SPE.seconds_per_element(mix)
        assert ratio > 1.4

    def test_float_dwt_cheaper_than_fixed_on_spe(self):
        """Section 4: fixed point loses its benefit on the Cell/B.E."""
        fixed = SPE.seconds_per_element(dwt_mix(False, fixed_point=True))
        flt = SPE.seconds_per_element(dwt_mix(False, fixed_point=False))
        assert flt < fixed
