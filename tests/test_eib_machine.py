"""Memory-system contention and machine configuration tests."""

import pytest

from repro.cell.eib import MemorySystem
from repro.cell.machine import MUTA_BLADE, QS20_BLADE, SINGLE_CELL, CellMachine


class TestMemorySystem:
    def test_single_stream_capped_by_mfc(self):
        ms = MemorySystem()
        assert ms.per_stream_bandwidth(1) == ms.single_stream_bw

    def test_many_streams_share_offchip(self):
        ms = MemorySystem()
        assert ms.per_stream_bandwidth(8) == pytest.approx(ms.offchip_bw / 8)

    def test_bandwidth_monotone_nonincreasing(self):
        ms = MemorySystem()
        prev = float("inf")
        for n in range(1, 17):
            bw = ms.per_stream_bandwidth(n)
            assert bw <= prev
            prev = bw

    def test_aggregate_conserved(self):
        """Section 4's premise: total off-chip bandwidth is the ceiling."""
        ms = MemorySystem()
        for n in (2, 4, 8, 16):
            assert ms.per_stream_bandwidth(n) * n <= ms.offchip_bw + 1e-6

    def test_transfer_time_scales(self):
        ms = MemorySystem()
        t1 = ms.transfer_time(1 << 20, 1)
        t8 = ms.transfer_time(1 << 20, 8)
        assert t8 > t1

    def test_zero_bytes_is_free(self):
        assert MemorySystem().transfer_time(0, 4) == 0.0

    def test_rejects_bad_args(self):
        ms = MemorySystem()
        with pytest.raises(ValueError):
            ms.per_stream_bandwidth(0)
        with pytest.raises(ValueError):
            ms.transfer_time(-1, 1)
        with pytest.raises(ValueError):
            MemorySystem(offchip_bw=0)


class TestCellMachine:
    def test_paper_platforms(self):
        assert SINGLE_CELL.num_spes == 8 and SINGLE_CELL.chips == 1
        assert QS20_BLADE.num_spes == 16 and QS20_BLADE.chips == 2
        assert MUTA_BLADE.clock_hz == 2.4e9

    def test_spes_on_chip_fill_order(self):
        m = QS20_BLADE.with_pes(10, 2)
        assert m.spes_on_chip(0) == 8
        assert m.spes_on_chip(1) == 2

    def test_per_spe_bandwidth_worst_chip(self):
        m = QS20_BLADE.with_pes(8, 1)  # all on chip 0
        assert m.per_spe_bandwidth() == pytest.approx(
            m.memory.per_stream_bandwidth(8)
        )
        m16 = QS20_BLADE  # 8 per chip
        assert m16.per_spe_bandwidth() == pytest.approx(
            m16.memory.per_stream_bandwidth(8)
        )

    def test_two_chips_double_total_bandwidth(self):
        assert QS20_BLADE.total_offchip_bw == 2 * SINGLE_CELL.total_offchip_bw

    def test_with_pes(self):
        m = SINGLE_CELL.with_pes(4, 1)
        assert m.num_spes == 4 and m.clock_hz == SINGLE_CELL.clock_hz

    def test_rejects_too_many_spes(self):
        with pytest.raises(ValueError):
            CellMachine(chips=1, num_spes=9)

    def test_rejects_no_pes(self):
        with pytest.raises(ValueError):
            CellMachine(num_spes=0, num_ppe_threads=0)

    def test_rejects_too_many_ppe_threads(self):
        with pytest.raises(ValueError):
            CellMachine(chips=1, num_spes=4, num_ppe_threads=3)

    def test_chip_index_checked(self):
        with pytest.raises(IndexError):
            SINGLE_CELL.spes_on_chip(1)
