"""ISA table and instruction-mix tests (Table 1)."""

import pytest

from repro.cell.isa import (
    PPE_ISA,
    SPE_ISA,
    InstrClass,
    InstructionMix,
    int32_multiply_mix,
)


class TestTable1:
    """The paper's Table 1 latencies, verbatim."""

    def test_mpyh_is_7_cycles(self):
        assert SPE_ISA.latency(InstrClass.MPYH) == 7

    def test_mpyu_is_7_cycles(self):
        assert SPE_ISA.latency(InstrClass.MPYU) == 7

    def test_add_is_2_cycles(self):
        assert SPE_ISA.latency(InstrClass.ADD) == 2

    def test_fm_is_6_cycles(self):
        assert SPE_ISA.latency(InstrClass.FM) == 6

    def test_emulated_int32_multiply_slower_than_fm(self):
        """The paper's core argument: emulated 32-bit integer multiply
        (2 mpyh + 1 mpyu + 2 a) has more latency than one fm."""
        emul_latency = sum(
            SPE_ISA.latency(i) * c for i, c in int32_multiply_mix().items()
        )
        assert emul_latency > SPE_ISA.latency(InstrClass.FM)
        assert emul_latency == 2 * 7 + 1 * 7 + 2 * 2


class TestIsaTables:
    def test_spe_has_no_cheap_branches(self):
        assert SPE_ISA.branch_miss_penalty >= 15

    def test_all_classes_defined_both_cores(self):
        for instr in InstrClass:
            assert instr in SPE_ISA.instrs
            assert instr in PPE_ISA.instrs

    def test_pipes_assigned(self):
        assert SPE_ISA.pipe(InstrClass.ADD).value == "even"
        assert SPE_ISA.pipe(InstrClass.LOAD).value == "odd"


class TestInstructionMix:
    def test_scaled(self):
        mix = InstructionMix(ops={InstrClass.ADD: 2.0}, branches=1.0)
        s = mix.scaled(3.0)
        assert s.ops[InstrClass.ADD] == 6.0 and s.branches == 3.0

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            InstructionMix(ops={}).scaled(-1.0)

    def test_merged_sums_ops(self):
        a = InstructionMix(ops={InstrClass.ADD: 1.0}, branches=2.0,
                           branch_miss_rate=0.5)
        b = InstructionMix(ops={InstrClass.ADD: 2.0, InstrClass.FM: 1.0},
                           branches=2.0, branch_miss_rate=0.1)
        m = a.merged(b)
        assert m.ops[InstrClass.ADD] == 3.0 and m.ops[InstrClass.FM] == 1.0
        assert m.branches == 4.0
        assert m.branch_miss_rate == pytest.approx(0.3)

    def test_merged_takes_worst_simd_efficiency(self):
        a = InstructionMix(ops={}, simd_efficiency=0.9)
        b = InstructionMix(ops={}, simd_efficiency=0.3)
        assert a.merged(b).simd_efficiency == 0.3

    def test_merged_propagates_dependency(self):
        a = InstructionMix(ops={}, dependency_factor=0.1)
        b = InstructionMix(ops={}, dependency_factor=0.4)
        assert a.merged(b).dependency_factor == 0.4
