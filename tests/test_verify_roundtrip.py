"""Round-trip verification: PSNR math, self-check hook, corpus gate."""

import json
import math
import os

import numpy as np
import pytest

from repro.image.synthetic import watch_face_image
from repro.jpeg2000.decoder import decode
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.params import EncoderParams
from repro.verify import (
    VerificationError,
    base_corpus,
    psnr,
    psnr_floor,
    run_corpus,
    verify_roundtrip,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestPsnr:
    def test_identical_is_inf(self):
        img = watch_face_image(16, 16, channels=1)
        assert math.isinf(psnr(img, img))

    def test_known_mse(self):
        a = np.zeros((10, 10), dtype=np.uint8)
        b = np.full((10, 10), 16, dtype=np.uint8)  # MSE = 256
        assert psnr(a, b) == pytest.approx(10 * math.log10(255**2 / 256))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape"):
            psnr(np.zeros((4, 4)), np.zeros((4, 5)))

    def test_uint16_peak(self):
        a = np.zeros((8, 8), dtype=np.uint16)
        b = np.full((8, 8), 256, dtype=np.uint16)
        assert psnr(a, b) == pytest.approx(10 * math.log10(65535**2 / 256**2))

    def test_floor_lookup(self):
        assert psnr_floor(0.1) == 28.0
        assert psnr_floor(0.17) == 28.0   # floor of largest key <= rate
        assert psnr_floor(1.0) == 38.0
        assert psnr_floor(0.01) == 20.0   # below the smallest key
        assert psnr_floor(None) == 34.0   # lossy without rate control


class TestVerifyRoundtrip:
    def test_lossless_passes(self):
        img = watch_face_image(32, 32, channels=1)
        params = EncoderParams(lossless=True, levels=2)
        cs = encode(img, params).codestream
        report = verify_roundtrip(img, cs, params)
        assert report.exact and math.isinf(report.psnr)
        assert report.kind == "lossless"

    def test_wrong_image_fails_bit_exact(self):
        img = watch_face_image(32, 32, channels=1)
        params = EncoderParams(lossless=True, levels=2)
        cs = encode(img, params).codestream
        other = img.copy()
        other[0, 0] ^= 1
        with pytest.raises(VerificationError) as err:
            verify_roundtrip(other, cs, params)
        assert err.value.details["kind"] == "lossless"
        assert err.value.details["differing_samples"] == 1

    def test_undecodable_codestream_fails(self):
        img = watch_face_image(16, 16, channels=1)
        with pytest.raises(VerificationError) as err:
            verify_roundtrip(img, b"\x00garbage", EncoderParams())
        assert err.value.details["kind"] == "undecodable"

    def test_lossy_floor_enforced(self):
        img = watch_face_image(32, 32, channels=1)
        params = EncoderParams(lossless=False, levels=2)
        cs = encode(img, params).codestream
        report = verify_roundtrip(img, cs, params)
        assert report.psnr >= report.floor
        with pytest.raises(VerificationError) as err:
            verify_roundtrip(img, cs, params, floor=1000.0)
        assert err.value.details["kind"] == "lossy"
        assert err.value.details["floor_db"] == 1000.0

    def test_shape_mismatch_fails(self):
        img = watch_face_image(32, 32, channels=1)
        params = EncoderParams(lossless=True, levels=2)
        cs = encode(img, params).codestream
        with pytest.raises(VerificationError) as err:
            verify_roundtrip(watch_face_image(16, 16, channels=1), cs, params)
        assert err.value.details["kind"] == "shape"


class TestSelfCheckParam:
    def test_self_check_encode_succeeds(self):
        img = watch_face_image(24, 24, channels=1)
        result = encode(img, EncoderParams(lossless=True, levels=2,
                                           self_check=True))
        assert result.codestream  # identical path, just verified

    def test_self_check_failure_propagates(self, monkeypatch):
        def boom(image, result):
            raise VerificationError("forced", {"kind": "test"})

        monkeypatch.setattr("repro.verify.roundtrip.verify_encode", boom)
        img = watch_face_image(24, 24, channels=1)
        with pytest.raises(VerificationError, match="forced"):
            encode(img, EncoderParams(lossless=True, levels=2, self_check=True))

    def test_self_check_off_never_verifies(self, monkeypatch):
        def boom(image, result):  # pragma: no cover - must not run
            raise AssertionError("self_check=False must not verify")

        monkeypatch.setattr("repro.verify.roundtrip.verify_encode", boom)
        img = watch_face_image(24, 24, channels=1)
        encode(img, EncoderParams(lossless=True, levels=2))


class TestParamsValidation:
    def test_lossless_with_rate_raises(self):
        with pytest.raises(ValueError, match="lossless=True cannot be combined"):
            EncoderParams(lossless=True, rate=0.1)

    def test_message_names_both_remedies(self):
        with pytest.raises(ValueError, match="lossless=False or rate=None"):
            EncoderParams(lossless=True, rate=0.5)


class TestCorpusGate:
    def test_corpus_is_diverse(self):
        entries = base_corpus()
        assert len(entries) >= 5
        assert any(e.params.lossless for e in entries)
        assert any(not e.params.lossless for e in entries)
        assert any(e.params.rate is not None for e in entries)
        assert any(e.image.ndim == 3 and e.image.shape[2] == 3 for e in entries)
        assert len({e.name for e in entries}) == len(entries)

    def test_quick_corpus_passes(self):
        report = run_corpus(rates=(0.25,), quick=True)
        assert report.ok, report.summary() + str(report.failures)
        names = [c.name for c in report.checks]
        assert any(n.startswith("lossy-psnr-floor") for n in names)
        assert any(n.startswith("byte-identity") for n in names)


class TestBenchRateGeometry:
    """Lossy round trip for the BENCH_rate.json geometry, scaled down.

    The benchmark encodes 2048x2048x3 at 5 levels / 64x64 blocks — far too
    slow to decode in a Python test, so the sweep keeps the coding
    parameters (channels, levels, code block size) and scales the canvas
    to 128x128.  Byte identity across backends and worker counts transfers
    each decode verdict to every combination.
    """

    @pytest.fixture(scope="class")
    def geometry(self):
        with open(os.path.join(REPO_ROOT, "BENCH_rate.json")) as fh:
            bench = json.load(fh)
        geo = bench["rate_control"]["geometry"]
        dims, levels_s, blocks_s = [part.strip() for part in geo.split(",")]
        w, h, channels = (int(x) for x in dims.split("x"))
        levels = int(levels_s.split()[0])
        cb = int(blocks_s.split()[0].split("x")[0])
        assert (w, h, channels) == (2048, 2048, 3)
        return channels, levels, cb

    @pytest.fixture(scope="class")
    def rate_sweep(self, geometry):
        channels, levels, cb = geometry
        img = watch_face_image(128, 128, channels=channels)
        sweep = {}
        for rate in (0.1, 0.25, 1.0):
            params = EncoderParams(lossless=False, rate=rate, levels=levels,
                                   codeblock_size=cb)
            cs = encode(img, params).codestream
            sweep[rate] = (params, cs, psnr(img, decode(cs)))
        return img, sweep

    def test_psnr_clears_per_rate_floor(self, rate_sweep):
        _, sweep = rate_sweep
        for rate, (_, _, measured) in sweep.items():
            assert measured >= psnr_floor(rate), (
                f"rate {rate}: {measured:.2f} dB under "
                f"{psnr_floor(rate):.2f} dB floor"
            )

    def test_psnr_monotone_in_rate(self, rate_sweep):
        _, sweep = rate_sweep
        psnrs = [sweep[r][2] for r in sorted(sweep)]
        for lo, hi in zip(psnrs, psnrs[1:]):
            assert hi >= lo - 0.01  # equal allowed: the cap may not bind

    @pytest.mark.parametrize("backend", ["vectorized", "reference"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_byte_identity_transfers_verdict(self, rate_sweep, backend, workers):
        img, sweep = rate_sweep
        for rate, (params, cs, _) in sweep.items():
            variant = EncoderParams(
                lossless=False, rate=rate, levels=params.levels,
                codeblock_size=params.codeblock_size,
                tier1_backend=backend, workers=workers,
            )
            assert encode(img, variant).codestream == cs, (
                f"{backend}/workers={workers} diverges at rate {rate}"
            )
