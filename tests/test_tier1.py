"""EBCOT Tier-1 bit-plane coder tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.jpeg2000.tier1 import (
    PASS_CLEAN,
    PASS_REF,
    PASS_SIG,
    decode_codeblock,
    encode_codeblock,
)

BANDS = ["LL", "HL", "LH", "HH"]


def roundtrip(cb: np.ndarray, band: str) -> np.ndarray:
    res = encode_codeblock(cb, band)
    return decode_codeblock(res.data, cb.shape[0], cb.shape[1], band,
                            res.msbs, res.num_passes)


class TestRoundTrip:
    @pytest.mark.parametrize("band", BANDS)
    def test_dense_random(self, band):
        rng = np.random.default_rng(hash(band) % 2**32)
        cb = rng.integers(-2000, 2000, size=(16, 16)).astype(np.int32)
        assert np.array_equal(roundtrip(cb, band), cb)

    def test_all_zero_block(self):
        cb = np.zeros((32, 32), dtype=np.int32)
        res = encode_codeblock(cb, "LL")
        assert res.msbs == 0 and res.num_passes == 0 and res.data == b""
        assert np.array_equal(
            decode_codeblock(b"", 32, 32, "LL", 0, 0), cb
        )

    def test_single_nonzero_sample(self):
        cb = np.zeros((8, 8), dtype=np.int32)
        cb[3, 5] = -77
        assert np.array_equal(roundtrip(cb, "HH"), cb)

    def test_sparse_block(self):
        rng = np.random.default_rng(4)
        cb = np.where(rng.random((24, 24)) < 0.03,
                      rng.integers(-500, 500, (24, 24)), 0).astype(np.int32)
        assert np.array_equal(roundtrip(cb, "HL"), cb)

    @pytest.mark.parametrize("shape", [(1, 1), (1, 17), (17, 1), (3, 5), (5, 4),
                                       (4, 4), (64, 64)])
    def test_odd_shapes(self, shape):
        rng = np.random.default_rng(shape[0] * 100 + shape[1])
        cb = rng.integers(-30, 30, size=shape).astype(np.int32)
        assert np.array_equal(roundtrip(cb, "LH"), cb)

    def test_extreme_magnitudes(self):
        cb = np.array([[(1 << 20) - 1, -(1 << 20)], [0, 1]], dtype=np.int32)
        assert np.array_equal(roundtrip(cb, "LL"), cb)

    def test_stripe_boundary_heights(self):
        # heights around the 4-row stripe boundary exercise RL-mode edges
        for h in (3, 4, 5, 7, 8, 9, 12):
            rng = np.random.default_rng(h)
            cb = rng.integers(-9, 10, size=(h, 6)).astype(np.int32)
            assert np.array_equal(roundtrip(cb, "HH"), cb), f"h={h}"

    @given(hnp.arrays(np.int32, (8, 8), elements=st.integers(-300, 300)),
           st.sampled_from(BANDS))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, cb, band):
        assert np.array_equal(roundtrip(cb, band), cb)


class TestPassStructure:
    def test_pass_sequence(self):
        rng = np.random.default_rng(0)
        cb = rng.integers(-100, 100, size=(16, 16)).astype(np.int32)
        res = encode_codeblock(cb, "LL")
        assert res.pass_types[0] == PASS_CLEAN
        for i in range(1, res.num_passes, 3):
            assert res.pass_types[i] == PASS_SIG
        assert res.num_passes == 1 + 3 * (res.msbs - 1)

    def test_pass_lengths_monotone_and_final_is_total(self):
        rng = np.random.default_rng(1)
        cb = rng.integers(-1000, 1000, size=(16, 16)).astype(np.int32)
        res = encode_codeblock(cb, "HL")
        assert all(a <= b for a, b in zip(res.pass_lengths, res.pass_lengths[1:]))
        assert res.pass_lengths[-1] == len(res.data)

    def test_distortion_reductions_nonnegative(self):
        rng = np.random.default_rng(2)
        cb = rng.integers(-400, 400, size=(12, 12)).astype(np.int32)
        res = encode_codeblock(cb, "HH")
        assert all(d >= -1e-9 for d in res.pass_dist)
        assert sum(res.pass_dist) > 0

    def test_total_distortion_accounts_all_energy(self):
        # full decode is exact, so cumulative distortion reduction must equal
        # the initial distortion sum |v|^2 (bias terms vanish at plane 0)
        rng = np.random.default_rng(3)
        cb = rng.integers(-100, 100, size=(8, 8)).astype(np.int32)
        res = encode_codeblock(cb, "LL")
        total = sum(res.pass_dist)
        energy = float(np.sum(cb.astype(np.float64) ** 2))
        assert total == pytest.approx(energy, rel=1e-9)

    def test_symbols_counted(self):
        rng = np.random.default_rng(4)
        cb = rng.integers(-50, 50, size=(16, 16)).astype(np.int32)
        res = encode_codeblock(cb, "LL")
        assert res.total_symbols >= cb.size  # at least one decision per sample
        assert len(res.pass_symbols) == res.num_passes


class TestTruncatedDecode:
    def test_mse_monotone_in_passes(self):
        rng = np.random.default_rng(7)
        cb = rng.integers(-2000, 2000, size=(16, 16)).astype(np.int32)
        res = encode_codeblock(cb, "HL")
        prev_mse = float("inf")
        for npass in range(1, res.num_passes + 1):
            ln = res.pass_lengths[npass - 1]
            dec = decode_codeblock(res.data[:ln], 16, 16, "HL", res.msbs, npass)
            mse = float(np.mean((dec.astype(np.float64) - cb) ** 2))
            assert mse <= prev_mse + 1e-9
            prev_mse = mse
        assert prev_mse == 0.0

    def test_error_bounded_by_remaining_planes(self):
        rng = np.random.default_rng(8)
        cb = rng.integers(-1023, 1024, size=(8, 8)).astype(np.int32)
        res = encode_codeblock(cb, "LL")
        # after the cleanup pass of plane p, error < 2^(p+1)
        for k, ptype in enumerate(res.pass_types):
            if ptype != PASS_CLEAN:
                continue
            plane = res.msbs - 1 - k // 3
            dec = decode_codeblock(res.data[: res.pass_lengths[k]], 8, 8,
                                   "LL", res.msbs, k + 1)
            err = np.abs(dec.astype(np.int64) - cb).max()
            assert err < 2 ** (plane + 1), (plane, err)


class TestValidation:
    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            encode_codeblock(np.zeros(16, dtype=np.int32), "LL")

    def test_rejects_oversize(self):
        with pytest.raises(ValueError):
            encode_codeblock(np.zeros((65, 64), dtype=np.int32), "LL")

    def test_rejects_unknown_band(self):
        with pytest.raises(ValueError):
            encode_codeblock(np.ones((4, 4), dtype=np.int32), "QQ")

    def test_decode_rejects_too_many_passes(self):
        with pytest.raises(ValueError):
            decode_codeblock(b"", 4, 4, "LL", 2, 10)

    def test_decode_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            decode_codeblock(b"", 0, 4, "LL", 1, 1)
