"""Model-level invariants: scale stability, conservation, monotonicity.

These guard the methodology itself: if the performance model's *ratios*
drifted with workload scale, the crop-and-scale benchmarking approach
would be invalid.
"""

import pytest

from repro.baselines.pentium4 import P4PipelineModel
from repro.cell.machine import CellMachine, SINGLE_CELL
from repro.core.calibration import Calibration
from repro.core.pipeline import PipelineModel, PipelineOptions
from repro.jpeg2000.encoder import scale_workload


@pytest.fixture(scope="module")
def base(encoded_lossless_rgb):
    return encoded_lossless_rgb.stats


def _cell(stats, spes=8):
    return PipelineModel(CellMachine(num_spes=spes), stats).simulate()


class TestScaleInvariance:
    def test_cell_vs_p4_ratio_stable_across_scales(self, base):
        """The headline ratios must not be artifacts of the scale factor."""
        ratios = []
        for f in (6, 12, 20):
            st = scale_workload(base, f)
            ratios.append(
                P4PipelineModel(st).simulate().total_s / _cell(st).total_s
            )
        assert max(ratios) / min(ratios) < 1.25

    def test_time_scales_roughly_quadratically(self, base):
        t1 = _cell(scale_workload(base, 8)).total_s
        t2 = _cell(scale_workload(base, 16)).total_s
        assert t2 / t1 == pytest.approx(4.0, rel=0.25)

    def test_speedup_curve_stable_across_scales(self, base):
        def speedup_at_8(f):
            st = scale_workload(base, f)
            return _cell(st, spes=1).total_s / _cell(st, spes=8).total_s

        assert speedup_at_8(8) == pytest.approx(speedup_at_8(16), rel=0.1)


class TestConservation:
    def test_busy_time_not_exceeding_wall(self, base):
        st = scale_workload(base, 8)
        m = SINGLE_CELL
        tl = PipelineModel(m, st).simulate()
        for s in tl.stages:
            # total SPE busy time across 8 SPEs cannot exceed 8x wall
            assert s.spe_busy_s <= m.num_spes * s.wall_s + 1e-9

    def test_tier1_work_conserved_across_configs(self, base):
        """Same blocks -> nearly the same total busy work at any PE count.

        Only the per-block DMA term varies (more SPEs share the bandwidth),
        so totals drift by a few percent, never by a scheduling artifact.
        """
        st = scale_workload(base, 8)
        busy = []
        for spes in (2, 4, 8):
            tl = PipelineModel(CellMachine(num_spes=spes), st).simulate()
            busy.append(tl.stage("tier1").spe_busy_s)
        assert busy[0] == pytest.approx(busy[1], rel=0.1)
        assert busy[1] == pytest.approx(busy[2], rel=0.1)


class TestCalibrationSensitivity:
    def test_cheaper_tier1_shrinks_only_tier1(self, base):
        st = scale_workload(base, 8)
        default = PipelineModel(SINGLE_CELL, st).simulate()
        cheap = PipelineModel(
            SINGLE_CELL, st,
            PipelineOptions(calibration=Calibration(tier1_ops_per_symbol=20.0)),
        ).simulate()
        assert cheap.stage("tier1").wall_s < default.stage("tier1").wall_s
        assert cheap.stage("dwt").wall_s == pytest.approx(
            default.stage("dwt").wall_s, rel=1e-9
        )

    def test_lower_bandwidth_slows_dwt(self, base):
        from repro.cell.eib import MemorySystem

        st = scale_workload(base, 8)
        fast = PipelineModel(SINGLE_CELL, st).simulate()
        slow_machine = CellMachine(
            num_spes=8, memory=MemorySystem(offchip_bw=6.4e9)
        )
        slow = PipelineModel(slow_machine, st).simulate()
        assert slow.stage("dwt").wall_s > fast.stage("dwt").wall_s
