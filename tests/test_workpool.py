"""Multi-core code-block work queue: determinism and integration.

The contract mirrors the paper's Section 3 SPE queue: blocks are handed
out dynamically, but the assembled codestream must not depend on worker
count, completion order, or backend.  Pool tests use small images so the
suite stays fast on single-core CI machines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.workpool import (
    CodeBlockTask,
    CodeBlockWorkQueue,
    QueueStats,
    default_workers,
    encode_blocks,
)
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.params import EncoderParams
from repro.jpeg2000.tier1 import encode_codeblock


def _blocks(seed=0, count=12):
    rng = np.random.default_rng(seed)
    bands = ["LL", "HL", "LH", "HH"]
    return [
        (
            rng.integers(-200, 200, size=(rng.integers(1, 17),
                                          rng.integers(1, 17))).astype(np.int32),
            bands[i % 4],
        )
        for i in range(count)
    ]


class TestQueue:
    def test_serial_matches_direct_calls(self):
        blocks = _blocks()
        got = encode_blocks(blocks, workers=1)
        want = [encode_codeblock(cb, band) for cb, band in blocks]
        assert got == want

    def test_pool_matches_serial(self):
        blocks = _blocks(seed=1)
        assert encode_blocks(blocks, workers=3) == encode_blocks(blocks, workers=1)

    def test_results_in_submission_order(self):
        # Mix fast (tiny) and slow (big dense) blocks so completion order
        # under the pool almost certainly differs from submission order.
        rng = np.random.default_rng(2)
        blocks = []
        for i in range(8):
            if i % 2:
                blocks.append((rng.integers(-1000, 1000, size=(32, 32))
                               .astype(np.int32), "HH"))
            else:
                blocks.append((np.ones((1, 1), dtype=np.int32), "LL"))
        serial = encode_blocks(blocks, workers=1)
        pooled = encode_blocks(blocks, workers=4)
        for i, (a, b) in enumerate(zip(serial, pooled)):
            assert a == b, f"block {i} out of order or mismatched"

    def test_queue_stats_recorded(self):
        queue = CodeBlockWorkQueue(workers=2)
        tasks = [CodeBlockTask(i, cb, band)
                 for i, (cb, band) in enumerate(_blocks(seed=3, count=6))]
        queue.encode_all(tasks)
        stats = queue.last_stats
        assert isinstance(stats, QueueStats)
        assert stats.workers == 2
        assert stats.blocks == 6
        assert sum(stats.blocks_per_worker.values()) == 6

    def test_empty_and_single(self):
        assert CodeBlockWorkQueue(workers=4).encode_all([]) == []
        # A single block never pays for a pool.
        [res] = encode_blocks(_blocks(count=1), workers=4)
        cb, band = _blocks(count=1)[0]
        assert res == encode_codeblock(cb, band)

    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="workers"):
            CodeBlockWorkQueue(workers=0)
        assert CodeBlockWorkQueue(workers=None).workers == default_workers()
        assert default_workers() >= 1

    def test_backend_forwarded(self):
        blocks = _blocks(seed=4, count=4)
        ref = encode_blocks(blocks, workers=2, backend="reference")
        vec = encode_blocks(blocks, workers=2, backend="vectorized")
        assert ref == vec

    def test_duplicate_seq_rejected(self):
        cb = np.ones((2, 2), dtype=np.int32)
        tasks = [CodeBlockTask(0, cb, "LL"), CodeBlockTask(0, cb, "HL")]
        with pytest.raises(ValueError, match="duplicate"):
            CodeBlockWorkQueue(workers=2).encode_all(tasks)


class TestEncoderIntegration:
    """Issue acceptance: --workers 1 vs --workers 4 byte-identical."""

    @pytest.fixture(scope="class")
    def image(self, watch_rgb_96):
        return watch_rgb_96

    def test_workers_1_vs_4_identical(self, image):
        r1 = encode(image, EncoderParams(levels=3, workers=1))
        r4 = encode(image, EncoderParams(levels=3, workers=4))
        assert r1.codestream == r4.codestream

    def test_stats_identical_across_workers(self, image):
        r1 = encode(image, EncoderParams(levels=3, workers=1))
        r2 = encode(image, EncoderParams(levels=3, workers=2))
        assert [vars(b) for b in r1.stats.blocks] == [
            vars(b) for b in r2.stats.blocks
        ]
        assert [vars(s) for s in r1.stats.subbands] == [
            vars(s) for s in r2.stats.subbands
        ]

    def test_rate_control_with_workers(self, image):
        p1 = EncoderParams(lossless=False, rate=0.2, workers=1)
        p2 = EncoderParams(lossless=False, rate=0.2, workers=2)
        assert encode(image, p1).codestream == encode(image, p2).codestream

    def test_backend_param_identical(self, image):
        a = encode(image, EncoderParams(levels=3, tier1_backend="reference"))
        b = encode(image, EncoderParams(levels=3, tier1_backend="vectorized"))
        assert a.codestream == b.codestream

    def test_params_validation(self):
        with pytest.raises(ValueError, match="tier1_backend"):
            EncoderParams(tier1_backend="cuda")
        with pytest.raises(ValueError, match="workers"):
            EncoderParams(workers=0)
        assert EncoderParams(workers=None).workers is None

    def test_cell_encoder_workers_override(self, watch_gray_64):
        from repro.core.parallel_encoder import CellJPEG2000Encoder

        pe = CellJPEG2000Encoder(workers=2)
        pr = pe.encode(watch_gray_64, EncoderParams(levels=3))
        base = encode(watch_gray_64, EncoderParams(levels=3))
        assert pr.codestream == base.codestream
        assert pr.encode_result.params.workers == 2
