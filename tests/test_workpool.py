"""Multi-core code-block work queue: determinism and integration.

The contract mirrors the paper's Section 3 SPE queue: blocks are handed
out dynamically, but the assembled codestream must not depend on worker
count, completion order, or backend.  Pool tests use small images so the
suite stays fast on single-core CI machines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.workpool import (
    CodeBlockTask,
    CodeBlockWorkQueue,
    QueueStats,
    default_workers,
    encode_blocks,
)
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.params import EncoderParams
from repro.jpeg2000.tier1 import encode_codeblock


def _blocks(seed=0, count=12):
    rng = np.random.default_rng(seed)
    bands = ["LL", "HL", "LH", "HH"]
    return [
        (
            rng.integers(-200, 200, size=(rng.integers(1, 17),
                                          rng.integers(1, 17))).astype(np.int32),
            bands[i % 4],
        )
        for i in range(count)
    ]


class TestQueue:
    def test_serial_matches_direct_calls(self):
        blocks = _blocks()
        got = encode_blocks(blocks, workers=1)
        want = [encode_codeblock(cb, band) for cb, band in blocks]
        assert got == want

    def test_pool_matches_serial(self):
        blocks = _blocks(seed=1)
        assert encode_blocks(blocks, workers=3) == encode_blocks(blocks, workers=1)

    def test_results_in_submission_order(self):
        # Mix fast (tiny) and slow (big dense) blocks so completion order
        # under the pool almost certainly differs from submission order.
        rng = np.random.default_rng(2)
        blocks = []
        for i in range(8):
            if i % 2:
                blocks.append((rng.integers(-1000, 1000, size=(32, 32))
                               .astype(np.int32), "HH"))
            else:
                blocks.append((np.ones((1, 1), dtype=np.int32), "LL"))
        serial = encode_blocks(blocks, workers=1)
        pooled = encode_blocks(blocks, workers=4)
        for i, (a, b) in enumerate(zip(serial, pooled)):
            assert a == b, f"block {i} out of order or mismatched"

    def test_queue_stats_recorded(self):
        queue = CodeBlockWorkQueue(workers=2)
        tasks = [CodeBlockTask(i, cb, band)
                 for i, (cb, band) in enumerate(_blocks(seed=3, count=6))]
        queue.encode_all(tasks)
        stats = queue.last_stats
        assert isinstance(stats, QueueStats)
        assert stats.workers == 2
        assert stats.blocks == 6
        assert sum(stats.blocks_per_worker.values()) == 6

    def test_empty_and_single(self):
        assert CodeBlockWorkQueue(workers=4).encode_all([]) == []
        # A single block never pays for a pool.
        [res] = encode_blocks(_blocks(count=1), workers=4)
        cb, band = _blocks(count=1)[0]
        assert res == encode_codeblock(cb, band)

    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="workers"):
            CodeBlockWorkQueue(workers=0)
        assert CodeBlockWorkQueue(workers=None).workers == default_workers()
        assert default_workers() >= 1

    def test_backend_forwarded(self):
        blocks = _blocks(seed=4, count=4)
        ref = encode_blocks(blocks, workers=2, backend="reference")
        vec = encode_blocks(blocks, workers=2, backend="vectorized")
        assert ref == vec

    def test_duplicate_seq_rejected(self):
        cb = np.ones((2, 2), dtype=np.int32)
        tasks = [CodeBlockTask(0, cb, "LL"), CodeBlockTask(0, cb, "HL")]
        with pytest.raises(ValueError, match="duplicate"):
            CodeBlockWorkQueue(workers=2).encode_all(tasks)


class TestEncoderIntegration:
    """Issue acceptance: --workers 1 vs --workers 4 byte-identical."""

    @pytest.fixture(scope="class")
    def image(self, watch_rgb_96):
        return watch_rgb_96

    def test_workers_1_vs_4_identical(self, image):
        r1 = encode(image, EncoderParams(levels=3, workers=1))
        r4 = encode(image, EncoderParams(levels=3, workers=4))
        assert r1.codestream == r4.codestream

    def test_stats_identical_across_workers(self, image):
        r1 = encode(image, EncoderParams(levels=3, workers=1))
        r2 = encode(image, EncoderParams(levels=3, workers=2))
        assert [vars(b) for b in r1.stats.blocks] == [
            vars(b) for b in r2.stats.blocks
        ]
        assert [vars(s) for s in r1.stats.subbands] == [
            vars(s) for s in r2.stats.subbands
        ]

    def test_rate_control_with_workers(self, image):
        p1 = EncoderParams(lossless=False, rate=0.2, workers=1)
        p2 = EncoderParams(lossless=False, rate=0.2, workers=2)
        assert encode(image, p1).codestream == encode(image, p2).codestream

    def test_backend_param_identical(self, image):
        a = encode(image, EncoderParams(levels=3, tier1_backend="reference"))
        b = encode(image, EncoderParams(levels=3, tier1_backend="vectorized"))
        assert a.codestream == b.codestream

    def test_params_validation(self):
        with pytest.raises(ValueError, match="tier1_backend"):
            EncoderParams(tier1_backend="cuda")
        with pytest.raises(ValueError, match="workers"):
            EncoderParams(workers=0)
        assert EncoderParams(workers=None).workers is None

    def test_cell_encoder_workers_override(self, watch_gray_64):
        from repro.core.parallel_encoder import CellJPEG2000Encoder

        pe = CellJPEG2000Encoder(workers=2)
        pr = pe.encode(watch_gray_64, EncoderParams(levels=3))
        base = encode(watch_gray_64, EncoderParams(levels=3))
        assert pr.codestream == base.codestream
        assert pr.encode_result.params.workers == 2


# ---------------------------------------------------------------------------
# Shared-memory plane dispatch (PR 4).
# ---------------------------------------------------------------------------

from repro.core.workpool import (  # noqa: E402
    PlaneBlockTask,
    _SharedPlanes,
    shared_memory_available,
)


def _planes_and_tasks(seed=3):
    """Two oddly shaped planes tiled into 16x16 (and ragged-edge) tasks."""
    rng = np.random.default_rng(seed)
    planes = [
        rng.integers(-300, 300, size=(40, 56)).astype(np.int32),
        rng.integers(-60, 60, size=(33, 17)).astype(np.int32),
    ]
    bands = ("LL", "HL", "LH", "HH")
    tasks = []
    for pi, plane in enumerate(planes):
        for r0 in range(0, plane.shape[0], 16):
            for c0 in range(0, plane.shape[1], 16):
                tasks.append(PlaneBlockTask(
                    seq=len(tasks), plane=pi, row0=r0, col0=c0,
                    height=min(16, plane.shape[0] - r0),
                    width=min(16, plane.shape[1] - c0),
                    band=bands[len(tasks) % 4],
                ))
    return planes, tasks


def _serial_oracle(planes, tasks, backend="vectorized"):
    return [
        encode_codeblock(t.slice_of(planes[t.plane]), t.band, backend=backend)
        for t in tasks
    ]


def _same_results(a, b) -> bool:
    return all(
        x.data == y.data and x.pass_lengths == y.pass_lengths
        and x.num_passes == y.num_passes
        for x, y in zip(a, b)
    )


class TestPlaneBlockTask:
    def test_slice_of(self):
        plane = np.arange(12 * 10, dtype=np.int32).reshape(12, 10)
        t = PlaneBlockTask(seq=0, plane=0, row0=4, col0=2,
                           height=3, width=5, band="HL")
        assert np.array_equal(t.slice_of(plane), plane[4:7, 2:7])


class TestPlaneDispatch:
    def test_serial_path_and_stats(self):
        planes, tasks = _planes_and_tasks()
        queue = CodeBlockWorkQueue(workers=1)
        res = queue.encode_plane_blocks(planes, tasks)
        assert _same_results(res, _serial_oracle(planes, tasks))
        assert queue.last_stats.dispatch == "serial"

    @pytest.mark.skipif(not shared_memory_available(),
                        reason="shared memory unavailable")
    def test_shared_memory_matches_serial(self):
        planes, tasks = _planes_and_tasks()
        queue = CodeBlockWorkQueue(workers=2, use_shared_memory=True)
        res = queue.encode_plane_blocks(planes, tasks)
        assert _same_results(res, _serial_oracle(planes, tasks))
        assert queue.last_stats.dispatch == "shared_memory"
        assert sum(queue.last_stats.blocks_per_worker.values()) == len(tasks)

    def test_pickle_path_matches_serial(self):
        planes, tasks = _planes_and_tasks()
        queue = CodeBlockWorkQueue(workers=2, use_shared_memory=False)
        res = queue.encode_plane_blocks(planes, tasks)
        assert _same_results(res, _serial_oracle(planes, tasks))
        assert queue.last_stats.dispatch == "pickle"

    def test_env_kill_switch_forces_pickle(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_DISPATCH", "0")
        assert not shared_memory_available()
        planes, tasks = _planes_and_tasks()
        queue = CodeBlockWorkQueue(workers=2)  # use_shared_memory=None
        res = queue.encode_plane_blocks(planes, tasks)
        assert _same_results(res, _serial_oracle(planes, tasks))
        assert queue.last_stats.dispatch == "pickle"

    def test_injected_pool_without_support_falls_back(self):
        class FakePool:
            """Duck-typed pool that only understands pickled payloads."""
            workers = 2
            # no supports_shared_memory attribute at all

            def imap_unordered(self, payloads):
                from repro.core.workpool import _encode_task
                for p in payloads:
                    yield _encode_task(p)

        planes, tasks = _planes_and_tasks()
        queue = CodeBlockWorkQueue(pool=FakePool())
        res = queue.encode_plane_blocks(planes, tasks)
        assert _same_results(res, _serial_oracle(planes, tasks))
        assert queue.last_stats.dispatch == "pickle"

    def test_backend_forwarded_through_shm(self):
        planes, tasks = _planes_and_tasks(seed=9)
        serial = _serial_oracle(planes, tasks, backend="reference")
        queue = CodeBlockWorkQueue(workers=2, backend="reference",
                                   use_shared_memory=True)
        res = queue.encode_plane_blocks(planes, tasks)
        assert _same_results(res, serial)

    def test_empty_tasks(self):
        assert CodeBlockWorkQueue(workers=2).encode_plane_blocks([], []) == []


class TestSharedPlanesLifecycle:
    @pytest.mark.skipif(not shared_memory_available(),
                        reason="shared memory unavailable")
    def test_segments_unlinked_after_close(self):
        from multiprocessing import shared_memory

        planes = [np.arange(64, dtype=np.int32).reshape(8, 8)]
        shared = _SharedPlanes(planes)
        name, shape, dtype = shared.descs[0]
        seg = shared_memory.SharedMemory(name=name)  # attachable while open
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
        assert np.array_equal(view, planes[0])
        del view
        seg.close()
        shared.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    @pytest.mark.skipif(not shared_memory_available(),
                        reason="shared memory unavailable")
    def test_close_is_idempotent(self):
        shared = _SharedPlanes([np.zeros((4, 4), dtype=np.int32)])
        shared.close()
        shared.close()  # second close must be a silent no-op
        assert shared.segments == []
