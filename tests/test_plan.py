"""Execution planner: calibration cache, cost model, precedence, identity.

The planner may only ever trade *time*: every plan, forced or chosen,
must produce the byte-identical codestream, and its decisions must be a
pure function of (shape, calibration).  These tests pin both, plus the
cache-invalidation rules that keep a stale calibration from ever
steering a different machine.
"""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.image.synthetic import watch_face_image
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.params import EncoderParams
from repro.plan import (
    DEFAULT_HOST_CALIBRATION,
    ExecutionPlan,
    OnlineCorrections,
    RequestShape,
    ServicePlanner,
    apply_plan,
    choose_plan,
    predict_stage_seconds,
    resolve_plan,
)
from repro.plan.calibration import (
    CALIBRATION_PATH_ENV,
    SCHEMA_VERSION,
    HostCalibration,
    get_calibration,
    invalidate_memo,
    load_calibration,
    machine_fingerprint,
    save_calibration,
)
from repro.plan.cutovers import (
    DWT_CUTOVER_MAX_SAMPLES,
    DWT_CUTOVER_MIN_SAMPLES,
    TIER1_CUTOVER_MAX_BLOCKS,
    TIER1_CUTOVER_MIN_BLOCKS,
    dwt_serial_cutover_samples,
    tier1_serial_cutover_blocks,
)


@pytest.fixture
def calib_file(tmp_path, monkeypatch):
    """Point the calibration cache at a tmp file and clear the memo."""
    path = str(tmp_path / "calibration.json")
    monkeypatch.setenv(CALIBRATION_PATH_ENV, path)
    invalidate_memo()
    yield path
    invalidate_memo()


def _measured_default() -> HostCalibration:
    """The pinned constants stamped as if measured on this machine."""
    return dataclasses.replace(
        DEFAULT_HOST_CALIBRATION,
        source="measured",
        created_at=1e9,
        fingerprint=machine_fingerprint(),
    )


# ---------------------------------------------------------------------------
# Calibration cache
# ---------------------------------------------------------------------------


class TestCalibrationCache:
    def test_round_trip(self, calib_file):
        calib = _measured_default()
        save_calibration(calib, calib_file)
        assert load_calibration(calib_file) == calib
        # The memoized accessor sees the saved file too.
        invalidate_memo()
        assert get_calibration() == calib

    def test_missing_file_falls_back_to_defaults(self, calib_file):
        assert load_calibration(calib_file) is None
        assert get_calibration() == DEFAULT_HOST_CALIBRATION

    def test_corrupt_file_rejected(self, calib_file):
        with open(calib_file, "w") as fh:
            fh.write("{not json")
        assert load_calibration(calib_file) is None

    def test_schema_version_invalidates(self, calib_file):
        save_calibration(_measured_default(), calib_file)
        with open(calib_file) as fh:
            payload = json.load(fh)
        payload["schema_version"] = SCHEMA_VERSION - 1
        with open(calib_file, "w") as fh:
            json.dump(payload, fh)
        assert load_calibration(calib_file) is None

    def test_fingerprint_invalidates(self, calib_file):
        other = dataclasses.replace(
            _measured_default(), fingerprint="deadbeefdeadbeef"
        )
        save_calibration(other, calib_file)
        assert load_calibration(calib_file) is None
        invalidate_memo()
        assert get_calibration() == DEFAULT_HOST_CALIBRATION

    def test_missing_backend_rejected(self, calib_file):
        calib = _measured_default()
        broken = dataclasses.replace(
            calib, t1_per_sample={"vectorized": 1e-6}
        )
        save_calibration(broken, calib_file)
        assert load_calibration(calib_file) is None

    def test_age_seconds(self):
        assert DEFAULT_HOST_CALIBRATION.age_seconds is None
        assert _measured_default().age_seconds > 0


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------


class TestCostModel:
    def test_plan_is_deterministic_for_fixed_calibration(self):
        shape = RequestShape(512, 512, 3)
        plans = {
            choose_plan(shape, calib=DEFAULT_HOST_CALIBRATION)
            for _ in range(5)
        }
        assert len(plans) == 1

    def test_larger_images_never_predict_cheaper(self):
        prev = 0.0
        for side in (64, 128, 256, 512, 1024, 2048):
            pred = predict_stage_seconds(
                RequestShape(side, side, 1), "batched", "fused", 1,
                calib=DEFAULT_HOST_CALIBRATION,
            )
            total = sum(pred.values())
            assert total > prev, f"side={side} predicted cheaper than smaller"
            prev = total

    def test_batched_wins_small_vectorized_wins_large(self):
        # The size crossover is the planner's raison d'etre: batched has
        # the lower per-block overhead on small images, but its stacked
        # working set loses the cache on multi-megapixel ones.
        small = choose_plan(
            RequestShape(256, 256, 1), calib=DEFAULT_HOST_CALIBRATION,
            max_workers=1,
        )
        large = choose_plan(
            RequestShape(2048, 2048, 3), calib=DEFAULT_HOST_CALIBRATION,
            max_workers=1,
        )
        assert small.tier1_backend == "batched"
        assert large.tier1_backend == "vectorized"

    def test_reference_backends_never_chosen(self):
        for side in (64, 512, 4096):
            plan = choose_plan(
                RequestShape(side, side, 1), calib=DEFAULT_HOST_CALIBRATION
            )
            assert plan.tier1_backend in ("vectorized", "batched")
            assert plan.dwt_backend == "fused"

    def test_lossy_costs_more_than_lossless(self):
        lossless = predict_stage_seconds(
            RequestShape(256, 256, 1), "batched", "fused", 1,
            calib=DEFAULT_HOST_CALIBRATION,
        )
        lossy = predict_stage_seconds(
            RequestShape(256, 256, 1, lossless=False, rate=0.25),
            "batched", "fused", 1, calib=DEFAULT_HOST_CALIBRATION,
        )
        assert sum(lossy.values()) > sum(lossless.values())
        assert lossy["rate_control"] > 0.0 == lossless["rate_control"]

    def test_small_shapes_plan_serial(self):
        # Below the cutovers parallelism is pure overhead; the model must
        # agree regardless of how many cores the machine has.
        plan = choose_plan(
            RequestShape(64, 64, 1), calib=DEFAULT_HOST_CALIBRATION,
            max_workers=8,
        )
        assert plan.workers == 1
        assert plan.dispatch == "serial"
        assert plan.dwt_chunk_cols is None

    def test_cutovers_reproduce_legacy_constants(self):
        assert dwt_serial_cutover_samples(DEFAULT_HOST_CALIBRATION) == 1 << 21
        assert tier1_serial_cutover_blocks(DEFAULT_HOST_CALIBRATION) == 24

    def test_cutovers_clamped_for_absurd_calibrations(self):
        fast = dataclasses.replace(
            DEFAULT_HOST_CALIBRATION,
            pool_spawn_s=10.0, dwt_fanout_s=10.0,
        )
        slow = dataclasses.replace(
            DEFAULT_HOST_CALIBRATION,
            pool_spawn_s=1e-9, dwt_fanout_s=1e-9,
        )
        for calib in (fast, slow):
            assert (DWT_CUTOVER_MIN_SAMPLES
                    <= dwt_serial_cutover_samples(calib)
                    <= DWT_CUTOVER_MAX_SAMPLES)
            assert (TIER1_CUTOVER_MIN_BLOCKS
                    <= tier1_serial_cutover_blocks(calib)
                    <= TIER1_CUTOVER_MAX_BLOCKS)


# ---------------------------------------------------------------------------
# Precedence: explicit > env > plan
# ---------------------------------------------------------------------------


class TestPrecedence:
    PLAN = ExecutionPlan(
        tier1_backend="vectorized", dwt_backend="fused", workers=2,
        source="fixed",
    )

    def test_plan_fills_automatic_fields(self, monkeypatch):
        monkeypatch.delenv("REPRO_TIER1_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_DWT_BACKEND", raising=False)
        params, decision = apply_plan(EncoderParams(), self.PLAN)
        assert params.tier1_backend == "vectorized"
        assert params.workers == 2
        assert "tier1_backend" in decision.applied
        assert decision.pinned == ()

    def test_explicit_param_beats_plan(self, monkeypatch):
        monkeypatch.delenv("REPRO_TIER1_BACKEND", raising=False)
        params, decision = apply_plan(
            EncoderParams(tier1_backend="batched", workers=4), self.PLAN
        )
        assert params.tier1_backend == "batched"
        assert params.workers == 4
        assert "tier1_backend:explicit" in decision.pinned
        assert "workers:explicit" in decision.pinned

    def test_env_beats_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER1_BACKEND", "batched")
        params, decision = apply_plan(EncoderParams(), self.PLAN)
        assert params.tier1_backend == "auto"  # env consulted downstream
        assert "tier1_backend:env" in decision.pinned

    def test_resolve_plan_none_is_passthrough(self):
        params = EncoderParams()
        out, decision = resolve_plan((64, 64), params)
        assert out is params
        assert decision is None

    def test_params_reject_garbage_plan(self):
        with pytest.raises(ValueError, match="plan"):
            EncoderParams(plan="fastest")


# ---------------------------------------------------------------------------
# Byte identity across forced plans
# ---------------------------------------------------------------------------


class TestPlanIdentity:
    def test_forced_plans_are_byte_identical(self):
        img = watch_face_image(96, 96, channels=3)
        base = encode(img, EncoderParams(levels=3)).codestream
        plans = [
            "auto",
            ExecutionPlan(tier1_backend="vectorized", workers=1),
            ExecutionPlan(tier1_backend="batched", workers=1),
            ExecutionPlan(tier1_backend="batched", workers=2),
            ExecutionPlan(tier1_backend="vectorized", dwt_backend="reference",
                          workers=2),
        ]
        for plan in plans:
            result = encode(img, EncoderParams(levels=3, plan=plan))
            assert result.codestream == base, f"plan {plan} broke bytes"
            assert result.plan is not None

    def test_lossy_plans_are_byte_identical(self):
        img = watch_face_image(96, 96, channels=1)
        kw = dict(lossless=False, rate=0.3, levels=3)
        base = encode(img, EncoderParams(**kw)).codestream
        for t1 in ("vectorized", "batched"):
            plan = ExecutionPlan(tier1_backend=t1, workers=1)
            assert encode(
                img, EncoderParams(plan=plan, **kw)
            ).codestream == base

    def test_auto_plan_decision_is_reported(self):
        img = watch_face_image(64, 64, channels=1)
        result = encode(img, EncoderParams(levels=3, plan="auto"))
        decision = result.plan
        assert decision.plan.source == "model"
        assert decision.plan.predicted_total > 0
        assert "t1=" in decision.plan.header_value()


# ---------------------------------------------------------------------------
# Online corrections + service planner
# ---------------------------------------------------------------------------


class TestCorrections:
    def test_ewma_moves_toward_observed_ratio(self):
        c = OnlineCorrections()
        for _ in range(50):
            c.observe("tier1", predicted_s=1.0, actual_s=2.0)
        assert 1.8 < c.factor("tier1") <= 2.0
        assert c.corrected("tier1", 1.0) == pytest.approx(c.factor("tier1"))

    def test_factors_are_clamped(self):
        c = OnlineCorrections()
        for _ in range(100):
            c.observe("tier1", predicted_s=1.0, actual_s=1000.0)
            c.observe("tier2", predicted_s=1000.0, actual_s=1e-9)
        assert c.factor("tier1") <= 4.0
        assert c.factor("tier2") >= 0.25

    def test_garbage_observations_ignored(self):
        c = OnlineCorrections()
        c.observe("tier1", predicted_s=0.0, actual_s=1.0)
        c.observe("tier1", predicted_s=1.0, actual_s=-1.0)
        assert c.factor("tier1") == 1.0

    def test_service_planner_stats_and_feedback(self):
        planner = ServicePlanner()
        img_shape = (128, 128, 3)
        eff, decision = planner.decide(
            img_shape, EncoderParams(plan="auto")
        )
        assert eff.plan is None  # never re-enters the planner downstream
        assert decision is not None

        class T:  # minimal StageTimings stand-in
            levelshift_mct = 0.001
            dwt = 0.004
            quantize = 0.001
            tier1 = 0.05
            rate_control = 0.0
            tier2 = 0.002

        planner.observe(decision, T())
        stats = planner.stats()
        assert stats["decisions"] == 1
        assert sum(stats["selections"].values()) == 1
        assert set(stats["cutovers"]) == {
            "dwt_serial_samples", "tier1_serial_blocks"
        }
        assert stats["corrections"]["tier1"]["samples"] == 1
