"""Tier-1 workload estimator tests: accuracy against the exact coder."""

import numpy as np
import pytest

from repro.cell.machine import SINGLE_CELL
from repro.core.pipeline import PipelineModel
from repro.image.synthetic import watch_face_image
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.params import EncoderParams
from repro.jpeg2000.tier1 import encode_codeblock
from repro.jpeg2000.tier1_stats import (
    estimate_codeblock_stats,
    estimate_workload,
)


class TestBlockEstimator:
    @pytest.mark.parametrize("style", ["dense", "sparse", "small", "structured"])
    def test_within_15pct_of_exact(self, style):
        rng = np.random.default_rng(hash(style) % 2**32)
        h, w = 48, 40
        if style == "dense":
            cb = rng.integers(-2000, 2000, (h, w)).astype(np.int32)
        elif style == "sparse":
            cb = ((rng.random((h, w)) < 0.04)
                  * rng.integers(-500, 500, (h, w))).astype(np.int32)
        elif style == "small":
            cb = rng.integers(-15, 16, (h, w)).astype(np.int32)
        else:
            yy, xx = np.mgrid[0:h, 0:w]
            cb = ((yy * 3 + xx * 2) % 40 - 20).astype(np.int32)
        exact = encode_codeblock(cb, "HL")
        msbs, est, passes = estimate_codeblock_stats(cb)
        assert msbs == exact.msbs
        assert len(passes) == exact.num_passes
        assert est == pytest.approx(exact.total_symbols, rel=0.15)

    def test_zero_block(self):
        assert estimate_codeblock_stats(np.zeros((16, 16), np.int32)) == (0, 0, [])

    def test_pass_symbols_sum(self):
        rng = np.random.default_rng(1)
        cb = rng.integers(-100, 100, (32, 32)).astype(np.int32)
        _, total, passes = estimate_codeblock_stats(cb)
        assert sum(passes) == total
        assert all(p >= 0 for p in passes)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            estimate_codeblock_stats(np.zeros(16, np.int32))

    def test_per_pass_correlation_with_exact(self):
        """Pass-by-pass estimates track the real pass profile."""
        rng = np.random.default_rng(2)
        cb = rng.integers(-300, 300, (40, 40)).astype(np.int32)
        exact = encode_codeblock(cb, "LL")
        _, _, est = estimate_codeblock_stats(cb)
        e = np.array(exact.pass_symbols, float)
        a = np.array(est, float)
        corr = np.corrcoef(e, a)[0, 1]
        assert corr > 0.95


class TestWorkloadEstimator:
    def test_matches_exact_workload_closely(self):
        img = watch_face_image(64, 64, channels=1)
        params = EncoderParams(lossless=True, levels=3)
        exact = encode(img, params).stats
        est = estimate_workload(img, params)
        assert len(est.blocks) == len(exact.blocks)
        tot_exact = sum(b.total_symbols for b in exact.blocks)
        tot_est = sum(b.total_symbols for b in est.blocks)
        assert tot_est == pytest.approx(tot_exact, rel=0.15)

    def test_lossy_workload(self):
        img = watch_face_image(64, 64, channels=1)
        est = estimate_workload(img, EncoderParams(lossless=False, levels=3))
        assert not est.lossless
        assert sum(b.total_symbols for b in est.blocks) > 0

    def test_drives_pipeline_model(self):
        """The estimator's purpose: pricing big images without exact Tier-1."""
        img = watch_face_image(256, 256, channels=3)
        est = estimate_workload(img)
        tl = PipelineModel(SINGLE_CELL, est).simulate()
        assert tl.total_s > 0
        assert tl.fraction("tier1") > 0.3

    def test_simulated_time_close_to_exact_path(self):
        img = watch_face_image(96, 96, channels=1)
        params = EncoderParams(lossless=True, levels=3)
        exact = encode(img, params).stats
        est = estimate_workload(img, params)
        t_exact = PipelineModel(SINGLE_CELL, exact).simulate().total_s
        t_est = PipelineModel(SINGLE_CELL, est).simulate().total_s
        assert t_est == pytest.approx(t_exact, rel=0.2)
