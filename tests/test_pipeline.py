"""Pipeline model tests: stage structure, scaling behaviour, options."""

import pytest

from repro.cell.machine import CellMachine, QS20_BLADE, SINGLE_CELL
from repro.core.pipeline import PipelineModel, PipelineOptions
from repro.jpeg2000.encoder import scale_workload
from repro.kernels.dwt_kernels import DwtVariant


@pytest.fixture(scope="module")
def stats_ll(encoded_lossless_rgb):
    return scale_workload(encoded_lossless_rgb.stats, 8)


@pytest.fixture(scope="module")
def stats_lossy(encoded_lossy_rate):
    return scale_workload(encoded_lossy_rate.stats, 8)


def simulate(stats, spes=8, ppes=1, **opt):
    chips = 2 if (spes > 8 or ppes > 1) else 1
    m = CellMachine(chips=chips, num_spes=spes, num_ppe_threads=ppes)
    return PipelineModel(m, stats, PipelineOptions(**opt)).simulate()


class TestStageStructure:
    def test_all_stages_present(self, stats_ll):
        tl = simulate(stats_ll)
        names = [s.name for s in tl.stages]
        assert names == [
            "read+convert", "levelshift+mct", "dwt", "quantize",
            "tier1", "rate_control", "tier2", "stream_io",
        ]

    def test_lossless_skips_quantize_and_rate(self, stats_ll):
        tl = simulate(stats_ll)
        assert tl.stage("quantize").wall_s == 0.0
        assert tl.stage("rate_control").wall_s == 0.0

    def test_lossy_has_quantize_and_rate(self, stats_lossy):
        tl = simulate(stats_lossy)
        assert tl.stage("quantize").wall_s > 0.0
        assert tl.stage("rate_control").wall_s > 0.0

    def test_tier1_dominates_lossless(self, stats_ll):
        """Prior profiling (Section 1): Tier-1 is the dominant kernel."""
        tl = simulate(stats_ll)
        assert tl.fraction("tier1") > 0.5

    def test_report_renders(self, stats_ll):
        text = simulate(stats_ll).report()
        assert "tier1" in text and "ms" in text


class TestScaling:
    def test_more_spes_never_slower(self, stats_ll):
        times = [simulate(stats_ll, spes=n).total_s for n in (1, 2, 4, 8)]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_speedup_at_most_linear(self, stats_ll):
        t1 = simulate(stats_ll, spes=1).total_s
        for n in (2, 4, 8):
            assert t1 / simulate(stats_ll, spes=n).total_s <= n * 1.05

    def test_two_chips_help(self, stats_ll):
        t8 = simulate(stats_ll, spes=8, ppes=1).total_s
        t16 = simulate(stats_ll, spes=16, ppes=2).total_s
        assert t16 < t8

    def test_extra_ppe_thread_helps_tier1(self, stats_ll):
        base = simulate(stats_ll, spes=8, ppes=1, **{})
        m2 = CellMachine(chips=2, num_spes=8, num_ppe_threads=2)
        plus = PipelineModel(m2, stats_ll).simulate()
        assert plus.stage("tier1").wall_s < base.stage("tier1").wall_s

    def test_lossy_flattens_harder_than_lossless(self, stats_ll, stats_lossy):
        """Figures 4 vs 5: the sequential rate control stage caps lossy."""
        def speedup(stats):
            return simulate(stats, spes=1).total_s / simulate(stats, spes=16, ppes=2).total_s
        assert speedup(stats_lossy) < 0.7 * speedup(stats_ll)

    def test_ppe_only_machine_works(self, stats_ll):
        m = CellMachine(num_spes=0, num_ppe_threads=1)
        tl = PipelineModel(m, stats_ll).simulate()
        assert tl.total_s > simulate(stats_ll, spes=8).total_s

    def test_dwt_stage_spe_far_faster_than_ppe_only(self, stats_ll):
        """Section 5.1: '1 SPE case outperforms 1 PPE only case by far' on
        the DWT."""
        one_spe = simulate(stats_ll, spes=1).stage("dwt").wall_s
        ppe_only = PipelineModel(
            CellMachine(num_spes=0, num_ppe_threads=1), stats_ll
        ).simulate().stage("dwt").wall_s
        assert ppe_only / one_spe > 2.2


class TestOptions:
    def test_naive_dwt_variant_slower(self, stats_ll):
        merged = simulate(stats_ll, dwt_variant=DwtVariant.MERGED)
        naive = simulate(stats_ll, dwt_variant=DwtVariant.NAIVE)
        assert naive.stage("dwt").wall_s > merged.stage("dwt").wall_s

    def test_interleaved_between_naive_and_merged(self, stats_ll):
        times = {
            v: simulate(stats_ll, dwt_variant=v).stage("dwt").wall_s
            for v in DwtVariant
        }
        assert times[DwtVariant.MERGED] <= times[DwtVariant.INTERLEAVED] \
            <= times[DwtVariant.NAIVE]

    def test_unaligned_decomposition_slower(self, stats_ll):
        # use a width that is not a cache-line multiple, so the naive
        # chunking actually lands on misaligned addresses
        import dataclasses

        ragged = dataclasses.replace(stats_ll, width=stats_ll.width + 37)
        aligned = simulate(ragged, aligned_decomposition=True)
        naive = simulate(ragged, aligned_decomposition=False)
        assert naive.stage("dwt").wall_s > aligned.stage("dwt").wall_s
        assert naive.stage("levelshift+mct").wall_s > \
            aligned.stage("levelshift+mct").wall_s

    def test_fixed_point_dwt_slower_lossy(self, stats_lossy):
        flt = simulate(stats_lossy, fixed_point=False)
        fix = simulate(stats_lossy, fixed_point=True)
        assert fix.stage("dwt").wall_s > flt.stage("dwt").wall_s

    def test_workqueue_beats_static(self, stats_ll):
        wq = simulate(stats_ll, use_workqueue=True)
        static = simulate(stats_ll, use_workqueue=False)
        assert wq.stage("tier1").wall_s <= static.stage("tier1").wall_s

    def test_single_buffer_slower(self, stats_ll):
        b1 = simulate(stats_ll, buffers=1)
        b4 = simulate(stats_ll, buffers=4)
        assert b1.stage("dwt").wall_s > b4.stage("dwt").wall_s

    def test_rate_control_fraction_rises_with_spes(self, stats_lossy):
        """Section 5.1: lossy flattens because rate control is sequential —
        its share grows toward ~60% at 16 SPE + 2 PPE."""
        f8 = simulate(stats_lossy, spes=8).fraction("rate_control")
        f16 = simulate(stats_lossy, spes=16, ppes=2).fraction("rate_control")
        assert f16 > f8
        assert f16 > 0.3  # the ~60% band is pinned in test_headline_results
