"""Tests for the shared validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import require_2d, require_in, require_positive


class TestRequire2d:
    def test_accepts_2d(self):
        arr = require_2d(np.zeros((2, 3)))
        assert arr.shape == (2, 3)

    def test_converts_lists(self):
        arr = require_2d([[1, 2], [3, 4]])
        assert arr.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="must be 2-D"):
            require_2d(np.zeros(3))

    def test_rejects_3d_with_name(self):
        with pytest.raises(ValueError, match="img"):
            require_2d(np.zeros((2, 2, 2)), name="img")


class TestRequirePositive:
    def test_accepts_positive(self):
        require_positive(1, "x")
        require_positive(0.5, "x")

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            require_positive(0, "x")
        with pytest.raises(ValueError, match="count"):
            require_positive(-1, "count")


class TestRequireIn:
    def test_accepts_member(self):
        require_in("a", ("a", "b"), "mode")

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="mode"):
            require_in("c", ("a", "b"), "mode")
