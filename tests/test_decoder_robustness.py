"""Decoder behaviour on malformed and adversarial codestreams."""

import numpy as np
import pytest

from repro.jpeg2000.codestream import CodestreamError
from repro.jpeg2000.decoder import decode
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.errors import (
    MarkerError,
    TruncatedCodestreamError,
)
from repro.jpeg2000.params import EncoderParams
from repro.image.synthetic import watch_face_image


@pytest.fixture(scope="module")
def valid_stream():
    img = watch_face_image(32, 32, channels=1)
    return img, encode(img, EncoderParams(lossless=True, levels=2)).codestream


class TestMalformedStreams:
    def test_empty(self):
        with pytest.raises(CodestreamError):
            decode(b"")

    def test_garbage(self):
        with pytest.raises(CodestreamError):
            decode(b"\x00" * 64)

    def test_truncated_header(self, valid_stream):
        _, cs = valid_stream
        with pytest.raises(CodestreamError):
            decode(cs[:20])

    def test_truncated_tile_data(self, valid_stream):
        _, cs = valid_stream
        with pytest.raises((CodestreamError, ValueError)):
            decode(cs[: len(cs) * 2 // 3])

    def test_wrong_magic(self, valid_stream):
        _, cs = valid_stream
        with pytest.raises(CodestreamError):
            decode(b"\xff\xd8" + cs[2:])  # JPEG SOI instead of SOC


class TestTypedErrors:
    """Every malformed stream raises a CodestreamError with offset context."""

    def test_truncation_is_typed_with_offset(self, valid_stream):
        _, cs = valid_stream
        with pytest.raises(TruncatedCodestreamError) as err:
            decode(cs[:30])
        assert err.value.offset is not None
        assert "byte offset" in str(err.value)

    def test_every_prefix_is_typed(self, valid_stream):
        """Truncation at any byte: decode succeeds or raises typed."""
        _, cs = valid_stream
        for n in range(0, len(cs), 7):  # stride keeps the sweep quick
            try:
                decode(cs[:n])
            except CodestreamError:
                pass

    def test_marker_reorder_is_typed(self, valid_stream):
        _, cs = valid_stream
        # Swap SIZ and COD segments wholesale: COD-before-SIZ must be a
        # MarkerError, not a KeyError or AttributeError downstream.
        siz = cs.find(b"\xff\x51")
        cod = cs.find(b"\xff\x52")
        qcd = cs.find(b"\xff\x5c")
        assert 0 < siz < cod < qcd
        reordered = cs[:siz] + cs[cod:qcd] + cs[siz:cod] + cs[qcd:]
        with pytest.raises(MarkerError):
            decode(reordered)

    def test_duplicate_siz_is_typed(self, valid_stream):
        _, cs = valid_stream
        siz = cs.find(b"\xff\x51")
        cod = cs.find(b"\xff\x52")
        doubled = cs[:cod] + cs[siz:cod] + cs[cod:]
        with pytest.raises(MarkerError, match="duplicate SIZ"):
            decode(doubled)

    def test_codestream_error_is_valueerror(self, valid_stream):
        """The taxonomy roots in ValueError so old callers keep working."""
        _, cs = valid_stream
        with pytest.raises(ValueError):
            decode(cs[:10])


class TestRoundTripStability:
    def test_double_encode_deterministic(self):
        img = watch_face_image(24, 24, channels=1, seed=3)
        a = encode(img, EncoderParams(lossless=True, levels=2)).codestream
        b = encode(img, EncoderParams(lossless=True, levels=2)).codestream
        assert a == b

    def test_reencode_decoded_lossless_is_identical(self, valid_stream):
        img, cs = valid_stream
        out = decode(cs)
        cs2 = encode(out, EncoderParams(lossless=True, levels=2)).codestream
        assert cs2 == cs

    def test_lossy_recompression_stabilizes(self):
        """Decode->re-encode of a lossy image loses little further quality."""
        img = watch_face_image(48, 48, channels=1)
        first = decode(encode(img, EncoderParams(lossless=False, levels=3)).codestream)
        second = decode(encode(first, EncoderParams(lossless=False, levels=3)).codestream)
        err1 = float(np.mean((first.astype(float) - img) ** 2))
        err2 = float(np.mean((second.astype(float) - img) ** 2))
        assert err2 < 4 * max(err1, 0.25)
