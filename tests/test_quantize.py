"""Quantizer, step signalling, and subband parameter tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg2000.quantize import (
    dequantize,
    derive_quant,
    exponent_mantissa_to_step,
    nominal_range_bits,
    quantize,
    step_to_exponent_mantissa,
)


class TestNominalRange:
    def test_ll_is_depth(self):
        assert nominal_range_bits(8, "LL", False) == 8

    def test_hh_adds_two(self):
        assert nominal_range_bits(8, "HH", False) == 10

    def test_chroma_expansion(self):
        assert nominal_range_bits(8, "HL", True) == 10

    def test_rejects_unknown_band(self):
        with pytest.raises(ValueError):
            nominal_range_bits(8, "XY", False)


class TestStepSignalling:
    @given(st.floats(min_value=1e-4, max_value=100.0), st.integers(8, 12))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_within_mantissa_precision(self, step, rb):
        exp, man = step_to_exponent_mantissa(step, rb)
        back = exponent_mantissa_to_step(exp, man, rb)
        assert back == pytest.approx(step, rel=2 ** -10)

    def test_power_of_two_is_exact(self):
        exp, man = step_to_exponent_mantissa(0.5, 8)
        assert man == 0
        assert exponent_mantissa_to_step(exp, man, 8) == 0.5

    def test_rejects_nonpositive_step(self):
        with pytest.raises(ValueError):
            step_to_exponent_mantissa(0.0, 8)

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            exponent_mantissa_to_step(32, 0, 8)
        with pytest.raises(ValueError):
            exponent_mantissa_to_step(5, 2048, 8)


class TestQuantizeDequantize:
    def test_zero_stays_zero(self):
        q = quantize(np.array([0.0]), 0.5)
        assert q[0] == 0
        assert dequantize(q, 0.5)[0] == 0.0

    def test_deadzone_behaviour(self):
        # values inside (-step, step) quantize to 0
        q = quantize(np.array([0.49, -0.49]), 0.5)
        assert not q.any()

    def test_sign_preserved(self):
        q = quantize(np.array([2.6, -2.6]), 0.5)
        assert q.tolist() == [5, -5]

    def test_reconstruction_error_bounded(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-100, 100, 1000)
        step = 0.75
        rec = dequantize(quantize(x, step), step)
        nonzero = np.abs(x) >= step
        assert np.abs(rec[nonzero] - x[nonzero]).max() <= step * 0.5 + 1e-9
        # deadzone samples reconstruct to zero with error < step
        assert np.abs(rec[~nonzero] - x[~nonzero]).max() < step

    @given(
        st.floats(min_value=0.01, max_value=10.0),
        st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=1, max_size=50),
    )
    @settings(max_examples=150, deadline=None)
    def test_error_bound_property(self, step, values):
        x = np.array(values)
        rec = dequantize(quantize(x, step), step)
        assert np.abs(rec - x).max() <= step + 1e-6

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            quantize(np.zeros(2), -1.0)
        with pytest.raises(ValueError):
            dequantize(np.zeros(2, np.int32), 0.0)

    def test_rejects_bad_bias(self):
        with pytest.raises(ValueError):
            dequantize(np.zeros(2, np.int32), 1.0, reconstruction_bias=1.5)


class TestDeriveQuant:
    def test_lossless_has_unit_step(self):
        q = derive_quant("HL", 2, 8, True, 2, 1 / 128)
        assert q.step == 1.0 and q.mantissa == 0
        assert q.exponent == nominal_range_bits(8, "HL", False)

    def test_lossy_step_positive_and_signalled(self):
        q = derive_quant("HH", 1, 8, False, 2, 1 / 128)
        assert q.step > 0
        back = exponent_mantissa_to_step(q.exponent, q.mantissa, q.nominal_bits)
        assert back == pytest.approx(q.step, rel=1e-9)

    def test_high_gain_band_gets_smaller_step(self):
        ll = derive_quant("LL", 3, 8, False, 2, 1 / 128)
        hh = derive_quant("HH", 1, 8, False, 2, 1 / 128)
        assert ll.step < hh.step  # LL synthesis gain is larger

    def test_bitplanes_include_guard(self):
        q = derive_quant("LL", 1, 8, True, 3, 1 / 128)
        assert q.num_bitplanes == q.exponent + 3 - 1
