"""Packet header encode/parse tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg2000.tier2 import (
    BlockContribution,
    PacketBand,
    _read_num_passes,
    _write_num_passes,
    encode_packet,
    parse_packet,
)
from repro.utils.bitio import BitReader, BitWriter


class TestNumPassesCodeword:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 7, 36, 37, 100, 164])
    def test_roundtrip(self, n):
        bw = BitWriter()
        _write_num_passes(bw, n)
        bw.align()
        assert _read_num_passes(BitReader(bw.getvalue())) == n

    def test_codeword_lengths_match_standard(self):
        expected = {1: 1, 2: 2, 3: 4, 5: 4, 6: 9, 36: 9, 37: 16, 164: 16}
        for n, bits in expected.items():
            bw = BitWriter()
            _write_num_passes(bw, n)
            assert bw.bit_length == bits, n

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            _write_num_passes(BitWriter(), 0)
        with pytest.raises(ValueError):
            _write_num_passes(BitWriter(), 165)


def _random_packet(rng, nbands=2):
    bands, grids = [], []
    for _ in range(nbands):
        rows, cols = rng.randint(1, 4), rng.randint(1, 4)
        blocks = []
        for i in range(rows * cols):
            inc = rng.random() < 0.7
            data = bytes(rng.randrange(256) for _ in range(rng.randint(0, 64))) \
                if inc else b""
            blocks.append(BlockContribution(
                i // cols, i % cols, inc,
                zero_bitplanes=rng.randint(0, 14) if inc else 0,
                num_passes=rng.randint(1, 34) if inc else 0,
                data=data,
            ))
        bands.append(PacketBand(rows, cols, blocks))
        grids.append((rows, cols, rows * cols))
    return bands, grids


class TestPacketRoundTrip:
    def test_empty_packet_is_one_byte(self):
        bands = [PacketBand(1, 1, [BlockContribution(0, 0, False)])]
        pkt = encode_packet(bands)
        assert len(pkt) == 1
        parsed, end = parse_packet(pkt, 0, [(1, 1, 1)])
        assert end == 1 and not parsed[0][0].included

    def test_single_included_block(self):
        blk = BlockContribution(0, 0, True, zero_bitplanes=3, num_passes=7,
                                data=b"\x01\x02\x03")
        pkt = encode_packet([PacketBand(1, 1, [blk])])
        parsed, end = parse_packet(pkt, 0, [(1, 1, 1)])
        p = parsed[0][0]
        assert p.included and p.zero_bitplanes == 3
        assert p.num_passes == 7 and p.data == b"\x01\x02\x03"
        assert end == len(pkt)

    def test_zero_length_contribution(self):
        blk = BlockContribution(0, 0, True, zero_bitplanes=0, num_passes=1, data=b"")
        pkt = encode_packet([PacketBand(1, 1, [blk])])
        parsed, _ = parse_packet(pkt, 0, [(1, 1, 1)])
        assert parsed[0][0].included and parsed[0][0].data == b""

    def test_large_length_needs_lblock_growth(self):
        blk = BlockContribution(0, 0, True, zero_bitplanes=1, num_passes=1,
                                data=bytes(5000))
        pkt = encode_packet([PacketBand(1, 1, [blk])])
        parsed, _ = parse_packet(pkt, 0, [(1, 1, 1)])
        assert len(parsed[0][0].data) == 5000

    def test_body_bytes_with_ff_are_safe(self):
        # packet body full of 0xFF must not confuse the stuffed header parse
        blk = BlockContribution(0, 0, True, zero_bitplanes=0, num_passes=2,
                                data=b"\xff" * 32)
        pkt = encode_packet([PacketBand(1, 1, [blk])])
        parsed, end = parse_packet(pkt, 0, [(1, 1, 1)])
        assert parsed[0][0].data == b"\xff" * 32 and end == len(pkt)

    def test_multiple_packets_concatenated(self):
        rng = random.Random(5)
        packets = []
        all_grids = []
        for _ in range(4):
            bands, grids = _random_packet(rng)
            packets.append((encode_packet(bands), bands, grids))
            all_grids.append(grids)
        stream = b"".join(p[0] for p in packets)
        pos = 0
        for pkt, bands, grids in packets:
            parsed, pos2 = parse_packet(stream, pos, grids)
            assert pos2 - pos == len(pkt)
            pos = pos2
            for band, pb in zip(bands, parsed):
                for b, p in zip(band.blocks, pb):
                    assert b.included == p.included
                    if b.included:
                        assert b.data == p.data

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, seed):
        rng = random.Random(seed)
        bands, grids = _random_packet(rng, nbands=rng.randint(1, 3))
        pkt = encode_packet(bands)
        parsed, end = parse_packet(pkt, 0, grids)
        assert end == len(pkt)
        for band, pb in zip(bands, parsed):
            for b, p in zip(band.blocks, pb):
                assert b.included == p.included
                if b.included:
                    assert (b.zero_bitplanes, b.num_passes, b.data) == (
                        p.zero_bitplanes, p.num_passes, p.data)

    def test_truncated_body_raises(self):
        blk = BlockContribution(0, 0, True, zero_bitplanes=0, num_passes=1,
                                data=b"abcdef")
        pkt = encode_packet([PacketBand(1, 1, [blk])])
        with pytest.raises(ValueError):
            parse_packet(pkt[:-3], 0, [(1, 1, 1)])


# ---------------------------------------------------------------------------
# Incremental length model (PR 4): packets are priced without being built.
# ---------------------------------------------------------------------------

from repro.jpeg2000.tier2 import encode_packet_header, packet_length  # noqa: E402


class TestPacketLength:
    def test_empty_packet(self):
        bands = [PacketBand(1, 1, [BlockContribution(0, 0, False)])]
        assert packet_length(bands) == len(encode_packet(bands)) == 1

    def test_single_block(self):
        blk = BlockContribution(0, 0, True, zero_bitplanes=3, num_passes=7,
                                data=b"\x01\x02\x03")
        bands = [PacketBand(1, 1, [blk])]
        assert packet_length(bands) == len(encode_packet(bands))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=120, deadline=None)
    def test_length_matches_bytes_property(self, seed):
        rng = random.Random(seed)
        bands, _ = _random_packet(rng, nbands=rng.randint(1, 3))
        assert packet_length(bands) == len(encode_packet(bands))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_header_identical_without_body_bytes(self, seed):
        # Pricing uses contributions that carry only `length`; the header
        # they produce must equal the one produced with real body bytes.
        rng = random.Random(seed)
        bands, _ = _random_packet(rng, nbands=rng.randint(1, 2))
        priced = [
            PacketBand(b.grid_rows, b.grid_cols, [
                BlockContribution(
                    c.grid_row, c.grid_col, c.included,
                    zero_bitplanes=c.zero_bitplanes,
                    num_passes=c.num_passes,
                    data=b"", length=len(c.data),
                )
                for c in b.blocks
            ])
            for b in bands
        ]
        assert encode_packet_header(priced) == encode_packet_header(bands)
        assert packet_length(priced) == len(encode_packet(bands))

    def test_default_length_is_data_length(self):
        blk = BlockContribution(0, 0, True, zero_bitplanes=0, num_passes=1,
                                data=b"abcd")
        assert blk.length == 4

    def test_encode_packet_rejects_length_mismatch(self):
        blk = BlockContribution(0, 0, True, zero_bitplanes=0, num_passes=1,
                                data=b"abcd", length=9)
        with pytest.raises(ValueError):
            encode_packet([PacketBand(1, 1, [blk])])

    def test_lblock_growth_priced_exactly(self):
        # 5000-byte contribution forces Lblock growth signalling in the
        # header; the price must track the extra bits exactly.
        blk = BlockContribution(0, 0, True, zero_bitplanes=1, num_passes=1,
                                data=bytes(5000))
        bands = [PacketBand(1, 1, [blk])]
        assert packet_length(bands) == len(encode_packet(bands))
