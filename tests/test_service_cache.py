"""Result cache and admission control: the issue's edge-case checklist.

- a cache hit returns identical bytes without touching the worker pool;
- a full queue rejects cleanly (or blocks, under that policy);
- LRU eviction respects the byte budget.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.image.synthetic import watch_face_image
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.params import EncoderParams
from repro.service import EncodeService, ServiceConfig
from repro.service.admission import AdmissionController, QueueFullError
from repro.service.cache import ResultCache, cache_key, canonical_params

PARAMS = EncoderParams(levels=3)


@pytest.fixture(scope="module")
def gray48():
    return watch_face_image(48, 48, channels=1)


class TestCacheKey:
    def test_execution_strategy_excluded(self, gray48):
        """workers / tier1_backend are bit-exact, so they share a key."""
        base = cache_key(gray48, EncoderParams(levels=3, workers=1))
        assert base == cache_key(
            gray48, EncoderParams(levels=3, workers=8,
                                  tier1_backend="reference")
        )

    def test_coding_parameters_included(self, gray48):
        base = cache_key(gray48, EncoderParams(levels=3))
        assert base != cache_key(gray48, EncoderParams(levels=4))
        assert base != cache_key(gray48, EncoderParams(lossless=False, rate=0.2,
                                                       levels=3))

    def test_pixels_included(self, gray48):
        other = gray48.copy()
        other[0, 0] ^= 1
        assert cache_key(gray48, PARAMS) != cache_key(other, PARAMS)
        # Same values, different shape/dtype must differ too.
        flat = gray48.reshape(1, -1).copy()
        assert cache_key(gray48, PARAMS) != cache_key(flat, PARAMS)

    def test_canonical_params_stable(self):
        s = canonical_params(EncoderParams(levels=3))
        assert "levels=3" in s and "workers" not in s


class TestResultCache:
    # Budgets below are phrased in full entry costs (payload + key +
    # ENTRY_OVERHEAD_BYTES) via entry_cost(), the unit the LRU charges in.

    def test_eviction_respects_byte_budget(self):
        two = 2 * ResultCache.entry_cost("a", b"x" * 40)
        cache = ResultCache(max_bytes=two)
        cache.put("a", b"x" * 40)
        cache.put("b", b"y" * 40)
        cache.put("c", b"z" * 40)  # third entry overflows: evicts LRU ("a")
        assert cache.bytes_used <= two
        assert cache.get("a") is None
        assert cache.get("b") == b"y" * 40
        assert cache.evictions == 1

    def test_get_refreshes_lru_order(self):
        two = 2 * ResultCache.entry_cost("a", b"x" * 40)
        cache = ResultCache(max_bytes=two)
        cache.put("a", b"x" * 40)
        cache.put("b", b"y" * 40)
        assert cache.get("a")  # "b" is now least recent
        cache.put("c", b"z" * 40)
        assert cache.get("b") is None
        assert cache.get("a") == b"x" * 40

    def test_oversized_item_not_stored(self):
        cache = ResultCache(max_bytes=10)
        assert cache.put("big", b"x" * 11) is False
        assert len(cache) == 0

    def test_key_and_overhead_count_against_budget(self):
        """A payload that fits nominally is rejected once key + entry
        overhead push its true cost past the budget."""
        key = "k" * 64  # a realistic SHA-256 hex key
        payload = b"x" * 100
        cache = ResultCache(max_bytes=110)  # > payload, < full entry cost
        assert ResultCache.entry_cost(key, payload) > 110
        assert cache.put(key, payload) is False
        ok = ResultCache(max_bytes=ResultCache.entry_cost(key, payload))
        assert ok.put(key, payload) is True
        snap = ok.snapshot()
        assert snap["payload_bytes"] == len(payload)
        assert snap["overhead_bytes"] == snap["bytes_used"] - len(payload)
        assert snap["bytes_used"] == ResultCache.entry_cost(key, payload)

    def test_replace_same_key_adjusts_bytes(self):
        cache = ResultCache(max_bytes=2 * ResultCache.entry_cost("a", b"x" * 80))
        cache.put("a", b"x" * 80)
        cache.put("a", b"y" * 20)
        assert cache.bytes_used == ResultCache.entry_cost("a", b"y" * 20)
        assert cache.get("a") == b"y" * 20

    def test_zero_budget_disables(self):
        cache = ResultCache(max_bytes=0)
        assert cache.put("a", b"") is False  # even an empty entry has a cost
        assert cache.put("b", b"x") is False
        assert cache.get("b") is None
        assert cache.snapshot()["hit_rate"] == 0.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(max_bytes=-1)


class TestServiceCacheIntegration:
    def test_hit_returns_identical_bytes_without_pool(self, gray48):
        offline = encode(gray48, PARAMS).codestream
        with EncodeService(ServiceConfig(workers=1)) as service:
            first = service.encode_image(gray48, PARAMS)
            assert first.cache_hit is False
            tasks_after_miss = service.pool.stats.tasks_done
            second = service.encode_image(gray48, PARAMS)
            assert second.cache_hit is True
            assert second.codestream == first.codestream == offline
            # The hit ran zero pool tasks and admitted zero jobs.
            assert service.pool.stats.tasks_done == tasks_after_miss
            assert service.admission.snapshot()["admitted"] == 1
            assert service.cache.snapshot()["hits"] == 1


    def test_concurrent_duplicates_coalesce_to_one_encode(self, gray48):
        """Single-flight: a cold burst of identical requests runs the full
        encode once; the rest wait and return the same bytes."""
        offline = encode(gray48, PARAMS).codestream
        with EncodeService(ServiceConfig(workers=1)) as service:
            outputs = [None] * 6

            def submit(i):
                outputs[i] = service.encode_image(gray48, PARAMS)

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(out.codestream == offline for out in outputs)
            snap = service.metrics.snapshot()
            assert snap["images_encoded_total"]["value"] == 1
            assert snap["cache_hits_total"]["value"] == 5
            assert sum(out.cache_hit for out in outputs) == 5

    def test_coalescing_disabled_without_cache(self, gray48):
        """cache_bytes=0 must not serialize identical requests."""
        with EncodeService(ServiceConfig(workers=1, cache_bytes=0)) as service:
            a = service.encode_image(gray48, PARAMS)
            b = service.encode_image(gray48, PARAMS)
            assert a.codestream == b.codestream
            assert not a.cache_hit and not b.cache_hit
            snap = service.metrics.snapshot()
            assert snap["images_encoded_total"]["value"] == 2
            assert snap["coalesced_total"]["value"] == 0


class TestAdmission:
    def test_reject_policy_when_full(self):
        gate = AdmissionController(max_queue=2, policy="reject")
        gate.acquire()
        gate.acquire()
        with pytest.raises(QueueFullError, match="full"):
            gate.acquire()
        assert gate.snapshot()["rejected"] == 1
        assert gate.shedding
        gate.release()
        gate.acquire()  # slot freed -> admitted again
        assert gate.snapshot()["admitted"] == 3

    def test_try_acquire(self):
        gate = AdmissionController(max_queue=1)
        assert gate.try_acquire() is True
        assert gate.try_acquire() is False
        gate.release()
        assert gate.try_acquire() is True

    def test_block_policy_waits_for_slot(self):
        gate = AdmissionController(max_queue=1, policy="block")
        gate.acquire()
        admitted = threading.Event()

        def waiter():
            gate.acquire()
            admitted.set()

        t = threading.Thread(target=waiter)
        t.start()
        assert not admitted.wait(0.15)  # still blocked while full
        gate.release()
        assert admitted.wait(5.0)
        t.join()
        assert gate.snapshot()["rejected"] == 0

    def test_block_policy_timeout(self):
        gate = AdmissionController(max_queue=1, policy="block",
                                   block_timeout_s=0.05)
        gate.acquire()
        with pytest.raises(QueueFullError):
            gate.acquire()

    def test_release_without_acquire(self):
        with pytest.raises(RuntimeError, match="release"):
            AdmissionController(max_queue=1).release()

    def test_validation(self):
        with pytest.raises(ValueError, match="max_queue"):
            AdmissionController(max_queue=0)
        with pytest.raises(ValueError, match="policy"):
            AdmissionController(max_queue=1, policy="drop")

    def test_service_queue_full_rejects_cleanly(self, gray48):
        """Saturate admission, then watch an uncached encode get shed."""
        with EncodeService(
            ServiceConfig(workers=1, max_queue=1, cache_bytes=0)
        ) as service:
            service.admission.acquire()  # occupy the only slot
            try:
                with pytest.raises(QueueFullError):
                    service.encode_image(gray48, PARAMS)
                assert service.metrics.snapshot()["rejected_total"]["value"] == 1
            finally:
                service.admission.release()
            # Slot free again: the same request now succeeds.
            out = service.encode_image(gray48, PARAMS)
            assert out.codestream == encode(gray48, PARAMS).codestream

    def test_cache_hits_flow_while_shedding(self, gray48):
        """Load shedding must not break already-cached traffic."""
        with EncodeService(ServiceConfig(workers=1, max_queue=1)) as service:
            warm = service.encode_image(gray48, PARAMS)
            service.admission.acquire()
            try:
                hit = service.encode_image(gray48, PARAMS)
                assert hit.cache_hit and hit.codestream == warm.codestream
            finally:
                service.admission.release()
