"""CellJPEG2000Encoder facade and timeline/stats helper tests."""

import numpy as np
import pytest

from repro.cell.machine import QS20_BLADE, SINGLE_CELL, CellMachine
from repro.cell.timeline import StageTiming, Timeline
from repro.core.parallel_encoder import CellJPEG2000Encoder
from repro.core.stats import format_scaling_table, scaling_table, speedup
from repro.image.synthetic import watch_face_image
from repro.jpeg2000.decoder import decode
from repro.jpeg2000.params import EncoderParams


@pytest.fixture(scope="module")
def parallel_result():
    img = watch_face_image(48, 48, channels=1)
    enc = CellJPEG2000Encoder(machine=SINGLE_CELL)
    return img, enc.encode(img, EncoderParams(lossless=True, levels=3))


class TestFacade:
    def test_codestream_decodes(self, parallel_result):
        img, res = parallel_result
        assert np.array_equal(decode(res.codestream), img)

    def test_timeline_attached(self, parallel_result):
        _, res = parallel_result
        assert res.simulated_seconds > 0
        assert res.timeline.stage("tier1").wall_s > 0

    def test_report_mentions_everything(self, parallel_result):
        _, res = parallel_result
        text = res.report()
        assert "lossless" in text and "tier1" in text and "ratio" in text

    def test_simulate_existing_result_on_other_machine(self, parallel_result):
        _, res = parallel_result
        blade = CellJPEG2000Encoder(machine=QS20_BLADE)
        tl = blade.simulate(res.encode_result)
        assert tl.total_s < res.timeline.total_s

    def test_scaling_study(self, parallel_result):
        _, res = parallel_result
        enc = CellJPEG2000Encoder(machine=QS20_BLADE)
        tls = enc.scaling_study(res.encode_result, [1, 4, 16])
        assert set(tls) == {1, 4, 16}
        assert tls[16].total_s < tls[1].total_s


class TestTimeline:
    def make(self):
        tl = Timeline(machine_name="m")
        tl.add(StageTiming("a", 1.0))
        tl.add(StageTiming("b", 3.0))
        return tl

    def test_total(self):
        assert self.make().total_s == 4.0

    def test_fraction(self):
        assert self.make().fraction("b") == pytest.approx(0.75)

    def test_stage_lookup_error(self):
        with pytest.raises(KeyError):
            self.make().stage("zzz")

    def test_negative_wall_rejected(self):
        with pytest.raises(ValueError):
            StageTiming("x", -1.0)

    def test_report_contains_percentages(self):
        assert "%" in self.make().report()


class TestStatsHelpers:
    def test_speedup(self):
        a = Timeline("x", [StageTiming("s", 2.0)])
        b = Timeline("y", [StageTiming("s", 1.0)])
        assert speedup(a, b) == 2.0

    def test_speedup_rejects_zero(self):
        a = Timeline("x", [StageTiming("s", 1.0)])
        b = Timeline("y", [])
        with pytest.raises(ValueError):
            speedup(a, b)

    def test_scaling_table_normalizes_to_smallest_key(self):
        tls = {
            1: Timeline("m", [StageTiming("s", 8.0)]),
            4: Timeline("m", [StageTiming("s", 2.0)]),
        }
        rows = scaling_table(tls)
        assert rows[0].speedup_vs_one_spe == 1.0
        assert rows[1].speedup_vs_one_spe == 4.0

    def test_format_scaling_table(self):
        tls = {1: Timeline("m", [StageTiming("s", 1.0)])}
        out = format_scaling_table(scaling_table(tls), "T")
        assert "T" in out and "speedup" in out

    def test_empty_table(self):
        assert scaling_table({}) == []
