"""Shared fixtures: session-cached encodes (Tier-1 is the slow part)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.image.synthetic import watch_face_image
from repro.jpeg2000.encoder import EncodeResult, encode
from repro.jpeg2000.params import EncoderParams


@pytest.fixture(scope="session")
def watch_gray_64() -> np.ndarray:
    return watch_face_image(64, 64, channels=1)


@pytest.fixture(scope="session")
def watch_rgb_64() -> np.ndarray:
    return watch_face_image(64, 64, channels=3)


@pytest.fixture(scope="session")
def watch_rgb_96() -> np.ndarray:
    return watch_face_image(96, 96, channels=3)


@pytest.fixture(scope="session")
def encoded_lossless_gray(watch_gray_64) -> EncodeResult:
    return encode(watch_gray_64, EncoderParams(lossless=True, levels=3))


@pytest.fixture(scope="session")
def encoded_lossless_rgb(watch_rgb_96) -> EncodeResult:
    return encode(watch_rgb_96, EncoderParams(lossless=True, levels=3))


@pytest.fixture(scope="session")
def encoded_lossy_gray(watch_gray_64) -> EncodeResult:
    return encode(watch_gray_64, EncoderParams(lossless=False, levels=3))


@pytest.fixture(scope="session")
def encoded_lossy_rate(watch_rgb_96) -> EncodeResult:
    return encode(watch_rgb_96, EncoderParams.lossy_rate(0.15))


# Headline-reproduction fixtures: a 192x192 crop with the paper's actual
# coding parameters (5 levels, rate 0.1), whose statistics scale to the
# 3072x3072x3 = 28.3 MB test image.
@pytest.fixture(scope="session")
def headline_lossless() -> EncodeResult:
    img = watch_face_image(192, 192, channels=3)
    return encode(img, EncoderParams.lossless_default())


@pytest.fixture(scope="session")
def headline_lossy() -> EncodeResult:
    img = watch_face_image(192, 192, channels=3)
    return encode(img, EncoderParams.lossy_rate(0.1))
