"""Differential tests: whole-image batched Tier-1 vs. the per-block coders.

The batched backend stacks same-geometry code blocks and runs the
SPP/MRP/CUP fixpoints once per bit plane across the whole stack; rate
control and the Cell model consume every byte, pass boundary, symbol
count, and distortion float it produces, so all of them must equal the
per-block reference coder exactly.  These tests sweep ragged edge
geometries, mixed subbands sharing one stack, skewed bit depths (blocks
entering the plane loop at different planes), the dispatch heuristics,
and the shared geometry cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.workpool import (
    TIER1_AUTO_SERIAL_ENV,
    tier1_auto_workers,
    tier1_serial_threshold,
)
from repro.image.synthetic import watch_face_image
from repro.jpeg2000 import tier1_geom
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.params import EncoderParams
from repro.jpeg2000.tier1 import (
    decode_codeblock,
    encode_codeblock,
    encode_codeblock_reference,
)
from repro.jpeg2000.tier1_batch import BatchOccupancy, encode_codeblocks_batched

BANDS = ["LL", "HL", "LH", "HH"]
#: Ragged shapes a 33x65 subband tiled by 16x16 blocks would produce,
#: plus degenerate single-row/column strips.
RAGGED_SHAPES = [(16, 16), (16, 1), (1, 16), (1, 1), (3, 16), (16, 5), (7, 11)]


def profile_block(rng, shape, mag):
    return rng.integers(-mag, mag + 1, size=shape).astype(np.int32)


def assert_results_identical(got, blocks):
    assert len(got) == len(blocks)
    for res, (cb, band) in zip(got, blocks):
        ref = encode_codeblock_reference(cb, band)
        assert res.data == ref.data
        assert res.msbs == ref.msbs
        assert res.num_passes == ref.num_passes
        assert res.pass_types == ref.pass_types
        assert res.pass_lengths == ref.pass_lengths
        assert res.pass_symbols == ref.pass_symbols
        assert res.pass_dist == ref.pass_dist  # exact float equality
        assert res == ref


class TestDifferential:
    @pytest.mark.parametrize("band", BANDS)
    def test_uniform_group_per_band(self, band):
        rng = np.random.default_rng(hash(band) % 2**32)
        blocks = [(profile_block(rng, (8, 8), 300), band) for _ in range(6)]
        assert_results_identical(encode_codeblocks_batched(blocks), blocks)

    def test_mixed_bands_share_one_stack(self):
        # One geometry group spanning all four bands: LL/LH share a LUT
        # class, HL and HH force the per-block LUT gather path.
        rng = np.random.default_rng(7)
        blocks = [
            (profile_block(rng, (8, 8), 200), BANDS[i % 4]) for i in range(8)
        ]
        occ = BatchOccupancy()
        got = encode_codeblocks_batched(blocks, occ)
        assert occ.groups == 1 and occ.blocks == 8 and occ.largest_group == 8
        assert_results_identical(got, blocks)

    def test_ragged_geometries_group_separately(self):
        rng = np.random.default_rng(13)
        blocks = []
        for shape in RAGGED_SHAPES:
            for band in ("LL", "HH"):
                blocks.append((profile_block(rng, shape, 150), band))
        occ = BatchOccupancy()
        got = encode_codeblocks_batched(blocks, occ)
        assert occ.groups == len(RAGGED_SHAPES)
        assert occ.blocks == len(blocks)
        assert occ.mean_blocks_per_group == pytest.approx(2.0)
        assert_results_identical(got, blocks)

    def test_skewed_bit_depths_mask_inactive_blocks(self):
        # Magnitudes spanning 1..4095: blocks join the plane loop at
        # different planes, so the active-prefix masking is exercised at
        # every plane count, including all-zero members.
        rng = np.random.default_rng(21)
        blocks = []
        for mag in (0, 1, 3, 15, 255, 4095):
            cb = profile_block(rng, (12, 12), mag) if mag else np.zeros(
                (12, 12), np.int32
            )
            blocks.append((cb, "HL"))
        assert_results_identical(encode_codeblocks_batched(blocks), blocks)

    def test_sparse_and_sign_profiles(self):
        rng = np.random.default_rng(3)
        sparse = np.zeros((16, 16), np.int32)
        idx = rng.choice(256, size=20, replace=False)
        sparse.ravel()[idx] = rng.integers(-900, 900, size=20)
        negative = rng.integers(-4000, -1, size=(16, 16)).astype(np.int32)
        blocks = [(sparse, "LH"), (negative, "LH"), (sparse.copy(), "HH")]
        assert_results_identical(encode_codeblocks_batched(blocks), blocks)

    def test_empty_and_zero_blocks(self):
        blocks = [
            (np.zeros((0, 8), np.int32), "LL"),
            (np.zeros((4, 4), np.int32), "HH"),
            (np.ones((4, 4), np.int32), "HL"),
        ]
        got = encode_codeblocks_batched(blocks)
        assert got[0].data == b"" and got[0].num_passes == 0
        assert_results_identical(got[1:], blocks[1:])

    def test_batched_roundtrips_through_decoder(self):
        rng = np.random.default_rng(17)
        cbs = [rng.integers(-300, 300, size=(13, 10)).astype(np.int32)
               for _ in range(3)]
        got = encode_codeblocks_batched([(cb, "HH") for cb in cbs])
        for cb, res in zip(cbs, got):
            out = decode_codeblock(
                res.data, 13, 10, "HH", res.msbs, res.num_passes
            )
            assert np.array_equal(out, cb)

    def test_single_block_backend_dispatch(self):
        rng = np.random.default_rng(9)
        cb = rng.integers(-100, 100, size=(12, 12)).astype(np.int32)
        assert encode_codeblock(cb, "LL", backend="batched") == \
            encode_codeblock(cb, "LL", backend="reference")

    def test_unknown_band_rejected(self):
        with pytest.raises((KeyError, ValueError)):
            encode_codeblocks_batched([(np.zeros((2, 2), np.int32), "XX")])


class TestEncodeIdentity:
    """Whole-image encodes: batched bytes == vectorized bytes."""

    @pytest.mark.parametrize("rate", [0.1, 0.5])
    @pytest.mark.parametrize("codeblock", [16, 64])
    def test_lossy_byte_identity(self, rate, codeblock):
        image = watch_face_image(96, 96, channels=3)
        base = encode(image, EncoderParams(
            lossless=False, rate=rate, codeblock_size=codeblock,
            tier1_backend="vectorized",
        )).codestream
        got = encode(image, EncoderParams(
            lossless=False, rate=rate, codeblock_size=codeblock,
            tier1_backend="batched",
        )).codestream
        assert got == base

    def test_lossless_byte_identity_and_dispatch(self):
        image = watch_face_image(64, 64, channels=1)
        base = encode(image, EncoderParams(tier1_backend="reference"))
        got = encode(image, EncoderParams(tier1_backend="batched"))
        assert got.codestream == base.codestream
        assert got.stats.tier1_dispatch == "batched"
        assert got.stats.tier1_batch_blocks == len(got.stats.blocks)
        assert got.stats.tier1_batch_groups >= 1
        assert got.stats.tier1_batch_occupancy > 0

    def test_multi_worker_byte_identity(self, monkeypatch):
        # Defeat the auto-serial clamp so a pool actually spins up even on
        # single-core CI boxes, then require byte identity + group dispatch.
        monkeypatch.setenv(TIER1_AUTO_SERIAL_ENV, "0")
        image = watch_face_image(96, 96, channels=3)
        base = encode(image, EncoderParams(
            lossless=False, rate=0.2, tier1_backend="batched", workers=1,
        ))
        multi = encode(image, EncoderParams(
            lossless=False, rate=0.2, tier1_backend="batched", workers=2,
        ))
        assert multi.codestream == base.codestream
        assert multi.stats.tier1_dispatch in (
            "batched_shared_memory", "batched_pickle"
        )

    def test_self_check_accepts_batched(self):
        image = watch_face_image(96, 96, channels=3)
        result = encode(image, EncoderParams(
            lossless=False, rate=0.25, tier1_backend="batched",
            self_check=True,
        ))
        assert result.codestream  # self_check raises on a bad round trip


class TestAutoSerialClamp:
    def test_serial_inputs_stay_serial(self, monkeypatch):
        monkeypatch.delenv(TIER1_AUTO_SERIAL_ENV, raising=False)
        assert tier1_auto_workers(1, 1000) == 1
        assert tier1_auto_workers(4, tier1_serial_threshold() - 1) == 1

    def test_threshold_is_model_derived(self, monkeypatch):
        # Pinned default calibration reproduces the legacy 24-block clamp;
        # any calibration stays inside the [8, 96] guardrail.
        monkeypatch.delenv(TIER1_AUTO_SERIAL_ENV, raising=False)
        from repro.plan.calibration import DEFAULT_HOST_CALIBRATION
        from repro.plan.cutovers import tier1_serial_cutover_blocks

        assert tier1_serial_cutover_blocks(DEFAULT_HOST_CALIBRATION) == 24
        assert 8 <= tier1_serial_threshold() <= 96

    def test_env_disables_clamp(self, monkeypatch):
        monkeypatch.setenv(TIER1_AUTO_SERIAL_ENV, "0")
        assert tier1_auto_workers(4, 1) == 4

    def test_env_overrides_threshold(self, monkeypatch):
        monkeypatch.setenv(TIER1_AUTO_SERIAL_ENV, "5")
        if (__import__("os").cpu_count() or 1) > 1:
            assert tier1_auto_workers(4, 5) == 4
        assert tier1_auto_workers(4, 4) == 1

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv(TIER1_AUTO_SERIAL_ENV, "soon")
        with pytest.raises(ValueError, match=TIER1_AUTO_SERIAL_ENV):
            tier1_auto_workers(4, 100)


class TestGeometryCache:
    def test_hits_misses_and_identity(self):
        tier1_geom.reset_cache_stats()
        before = tier1_geom.cache_stats()
        geo = tier1_geom.geometry(9, 9)
        again = tier1_geom.geometry(9, 9)
        assert again is geo
        after = tier1_geom.cache_stats()
        assert after["misses"] >= before["misses"]
        assert after["hits"] >= before["hits"] + 1
        assert 0.0 <= after["hit_rate"] <= 1.0

    def test_arrays_are_readonly(self):
        geo = tier1_geom.geometry(5, 7)
        assert not geo.nbr.flags.writeable
        assert not geo.order.flags.writeable
        with pytest.raises(ValueError):
            geo.nbr[0, 0] = 1

    def test_stats_reporting_hook(self):
        from repro.jpeg2000.tier1_stats import geometry_cache_stats

        stats = geometry_cache_stats()
        assert set(stats) == {"hits", "misses", "entries", "hit_rate"}
