"""BMP/PNM reader-writer and synthetic generator tests."""

import numpy as np
import pytest

from repro.image.bmp import read_bmp, write_bmp
from repro.image.pnm import read_pnm, write_pnm
from repro.image.synthetic import gradient_image, noise_image, watch_face_image


class TestBmp:
    def test_rgb_roundtrip(self, tmp_path):
        img = watch_face_image(33, 47, channels=3)
        path = str(tmp_path / "t.bmp")
        write_bmp(path, img)
        assert np.array_equal(read_bmp(path), img)

    def test_gray_roundtrip(self, tmp_path):
        img = watch_face_image(20, 31, channels=1)
        path = str(tmp_path / "g.bmp")
        write_bmp(path, img)
        assert np.array_equal(read_bmp(path), img)

    def test_row_padding_widths(self, tmp_path):
        # widths that exercise every 4-byte stride padding case
        for w in (1, 2, 3, 4, 5):
            img = gradient_image(3, w, 3)
            path = str(tmp_path / f"w{w}.bmp")
            write_bmp(path, img)
            assert np.array_equal(read_bmp(path), img)

    def test_rejects_non_uint8(self, tmp_path):
        with pytest.raises(ValueError):
            write_bmp(str(tmp_path / "x.bmp"), np.zeros((4, 4), dtype=np.float32))

    def test_rejects_bad_magic(self, tmp_path):
        p = tmp_path / "bad.bmp"
        p.write_bytes(b"XX" + b"\0" * 100)
        with pytest.raises(ValueError):
            read_bmp(str(p))

    def test_rejects_truncated(self, tmp_path):
        p = tmp_path / "short.bmp"
        p.write_bytes(b"BM\0\0")
        with pytest.raises(ValueError):
            read_bmp(str(p))

    def test_rejects_bad_shape(self, tmp_path):
        with pytest.raises(ValueError):
            write_bmp(str(tmp_path / "x.bmp"), np.zeros((4, 4, 2), dtype=np.uint8))


class TestPnm:
    def test_ppm_roundtrip(self, tmp_path):
        img = watch_face_image(21, 17, channels=3)
        path = str(tmp_path / "t.ppm")
        write_pnm(path, img)
        assert np.array_equal(read_pnm(path), img)

    def test_pgm_roundtrip(self, tmp_path):
        img = noise_image(9, 13, seed=5)
        path = str(tmp_path / "t.pgm")
        write_pnm(path, img)
        assert np.array_equal(read_pnm(path), img)

    def test_comment_in_header(self, tmp_path):
        p = tmp_path / "c.pgm"
        p.write_bytes(b"P5\n# a comment\n2 2\n255\n\x01\x02\x03\x04")
        img = read_pnm(str(p))
        assert img.tolist() == [[1, 2], [3, 4]]

    def test_16bit_pgm_roundtrip(self, tmp_path):
        img = (np.arange(12, dtype=np.uint16).reshape(3, 4) * 5000)
        path = str(tmp_path / "m.pgm")
        write_pnm(path, img)
        back = read_pnm(path)
        assert back.dtype == np.uint16
        assert np.array_equal(back, img)

    def test_16bit_ppm_roundtrip(self, tmp_path):
        img = np.random.default_rng(3).integers(
            0, 65536, size=(5, 7, 3), dtype=np.uint16
        )
        path = str(tmp_path / "m.ppm")
        write_pnm(path, img)
        assert np.array_equal(read_pnm(path), img)

    def test_16bit_samples_are_big_endian(self, tmp_path):
        # Netpbm: two-byte samples are most-significant byte first.
        p = tmp_path / "be.pgm"
        p.write_bytes(b"P5\n2 1\n65535\n\x01\x00\x00\x02")
        assert read_pnm(str(p)).tolist() == [[256, 2]]

    def test_maxval_above_16bit_is_typed(self, tmp_path):
        from repro.image.errors import ImageFormatError

        p = tmp_path / "m.pgm"
        p.write_bytes(b"P5\n2 2\n70000\n" + b"\0" * 8)
        with pytest.raises(ImageFormatError) as err:
            read_pnm(str(p))
        assert err.value.reason == "bad-maxval"

    def test_truncated_pixels_are_typed(self, tmp_path):
        from repro.image.errors import ImageFormatError

        p = tmp_path / "short.pgm"
        p.write_bytes(b"P5\n4 4\n255\n\x00\x01")
        with pytest.raises(ImageFormatError) as err:
            read_pnm(str(p))
        assert err.value.reason == "truncated"

    def test_rejects_ascii_pnm(self, tmp_path):
        p = tmp_path / "a.pgm"
        p.write_bytes(b"P2\n2 2\n255\n1 2 3 4")
        with pytest.raises(ValueError):
            read_pnm(str(p))

    def test_format_error_is_a_value_error(self):
        from repro.image.errors import ImageFormatError

        assert issubclass(ImageFormatError, ValueError)


class TestSynthetic:
    def test_watch_deterministic(self):
        a = watch_face_image(32, 32, seed=7)
        b = watch_face_image(32, 32, seed=7)
        assert np.array_equal(a, b)

    def test_watch_seed_changes_image(self):
        a = watch_face_image(32, 32, seed=1)
        b = watch_face_image(32, 32, seed=2)
        assert not np.array_equal(a, b)

    def test_watch_has_structure(self):
        # the dial should make the centre brighter than the corners
        img = watch_face_image(128, 128, channels=1)
        centre = img[48:80, 48:80].mean()
        corners = np.concatenate(
            [img[:8, :8].ravel(), img[-8:, -8:].ravel()]
        ).mean()
        assert centre > corners + 20

    def test_watch_gray_shape_dtype(self):
        img = watch_face_image(40, 50, channels=1)
        assert img.shape == (40, 50) and img.dtype == np.uint8

    def test_watch_rgb_channels_differ(self):
        img = watch_face_image(64, 64, channels=3)
        assert not np.array_equal(img[:, :, 0], img[:, :, 2])

    def test_gradient_monotone(self):
        img = gradient_image(16, 16)
        assert img[0, 0] <= img[-1, -1]

    def test_noise_range(self):
        img = noise_image(64, 64, seed=0)
        assert img.min() >= 0 and img.max() <= 255
        assert img.std() > 50  # uniform noise is spread out

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            watch_face_image(0, 10)
        with pytest.raises(ValueError):
            gradient_image(10, -1)

    def test_rejects_bad_channels(self):
        with pytest.raises(ValueError):
            watch_face_image(8, 8, channels=4)
