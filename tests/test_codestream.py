"""Codestream marker serialization tests."""

import struct

import pytest

from repro.jpeg2000.codestream import (
    MARKER_EOC,
    MARKER_SIZ,
    MARKER_SOC,
    CodestreamError,
    CodestreamInfo,
    SubbandQuantField,
    parse_codestream,
    write_codestream,
    write_main_header,
)


def make_info(**overrides) -> CodestreamInfo:
    base = dict(
        width=640, height=480, num_components=3, bit_depth=8, signed=False,
        levels=5, codeblock_size=64, reversible=True, use_mct=True,
        num_layers=1, guard_bits=2,
        quant_fields=[SubbandQuantField(e, 0) for e in range(16)],
        tile_data=b"\x01\x02\x03",
    )
    base.update(overrides)
    return CodestreamInfo(**base)


class TestWriteParse:
    def test_roundtrip_reversible(self):
        info = make_info()
        out = parse_codestream(write_codestream(info))
        assert (out.width, out.height) == (640, 480)
        assert out.num_components == 3 and out.bit_depth == 8
        assert out.levels == 5 and out.codeblock_size == 64
        assert out.reversible and out.use_mct
        assert out.guard_bits == 2
        assert [q.exponent for q in out.quant_fields] == list(range(16))
        assert out.tile_data == b"\x01\x02\x03"

    def test_roundtrip_irreversible(self):
        info = make_info(
            reversible=False,
            quant_fields=[SubbandQuantField(10, 1234), SubbandQuantField(7, 2047)],
        )
        out = parse_codestream(write_codestream(info))
        assert not out.reversible
        assert out.quant_fields[0].mantissa == 1234
        assert out.quant_fields[1].exponent == 7

    def test_roundtrip_16bit_gray(self):
        info = make_info(num_components=1, bit_depth=16, use_mct=False,
                         codeblock_size=32)
        out = parse_codestream(write_codestream(info))
        assert out.bit_depth == 16 and out.codeblock_size == 32
        assert not out.use_mct

    def test_starts_with_soc(self):
        data = write_codestream(make_info())
        assert struct.unpack_from(">H", data, 0)[0] == MARKER_SOC

    def test_ends_with_eoc(self):
        data = write_codestream(make_info())
        assert struct.unpack_from(">H", data, len(data) - 2)[0] == MARKER_EOC

    def test_header_is_prefix(self):
        info = make_info()
        assert write_codestream(info).startswith(write_main_header(info))


class TestErrors:
    def test_missing_soc(self):
        with pytest.raises(CodestreamError):
            parse_codestream(b"\x00\x00" + write_codestream(make_info())[2:])

    def test_truncated_stream(self):
        data = write_codestream(make_info())
        with pytest.raises(CodestreamError):
            parse_codestream(data[: len(data) // 2])

    def test_empty(self):
        with pytest.raises(CodestreamError):
            parse_codestream(b"")

    def test_unexpected_marker(self):
        # valid SOC then a bogus marker
        with pytest.raises(CodestreamError):
            parse_codestream(struct.pack(">HH", MARKER_SOC, 0xFFAA))

    def test_tile_before_header(self):
        data = struct.pack(">H", MARKER_SOC)
        data += struct.pack(">HH", MARKER_SIZ, 2)  # empty SIZ payload -> error later
        with pytest.raises(Exception):
            parse_codestream(data)
