"""Fused front end: differential vs the dwt.py oracle, byte-identity, wiring.

The fused backend's contract is absolute: bit-exact subbands against the
reference oracle for every shape, filter, level count, chunk width, and
worker count — and therefore byte-identical codestreams.  These tests are
the differential harness that lets :mod:`repro.jpeg2000.dwt` stay the
readable specification while :mod:`repro.jpeg2000.dwt_fast` carries the
performance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.image.synthetic import watch_face_image
from repro.jpeg2000 import dwt
from repro.jpeg2000.dwt_fast import (
    AUTO_SERIAL_ENV,
    CACHE_LINE_COLS,
    DWT_BACKENDS,
    FrontendResult,
    StageTimings,
    auto_serial_workers,
    dwt_serial_threshold,
    lift_53,
    lift_97,
    resolve_chunk,
    resolve_dwt_backend,
    run_frontend,
)
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.params import EncoderParams

RNG = np.random.default_rng(20080612)


@pytest.fixture(autouse=True)
def _disable_auto_serial(monkeypatch):
    """Keep the worker-parametrized differential tests genuinely parallel.

    The auto-serial clamp (PR 4) would otherwise turn every small-image
    ``workers > 1`` case into a serial run and the chunk fan-out would go
    untested.  Clamp-specific tests re-set the variable themselves — the
    monkeypatch instance is shared, so their ``setenv`` wins.
    """
    monkeypatch.setenv(AUTO_SERIAL_ENV, "0")


def _frontends(comps, depth, params, **fused_kw):
    ref = run_frontend(comps, depth, params, backend="reference")
    fused = run_frontend(comps, depth, params, backend="fused", **fused_kw)
    return ref, fused


def _assert_identical(ref: FrontendResult, fused: FrontendResult) -> None:
    assert fused.levels == ref.levels
    assert len(fused.decomps) == len(ref.decomps)
    for dr, df in zip(ref.decomps, fused.decomps):
        assert df.shape == dr.shape and df.levels == dr.levels
        assert df.ll.dtype == dr.ll.dtype
        np.testing.assert_array_equal(df.ll, dr.ll)
        assert len(df.details) == len(dr.details)
        for lr, lf in zip(dr.details, df.details):
            for br, bf in zip(lr, lf):
                assert bf.dtype == br.dtype and bf.shape == br.shape
                np.testing.assert_array_equal(bf, br)


class TestLiftKernels:
    """The fused 1-D kernels against the oracle transforms, every length."""

    @pytest.mark.parametrize("n", list(range(1, 40)))
    def test_lift_53_matches_oracle(self, n):
        x = RNG.integers(-(1 << 15), 1 << 15, size=n).astype(np.int32)
        lo_ref, hi_ref = dwt.forward_53_1d(x)
        lo = np.empty(n - n // 2, np.int32)
        hi = np.empty(n // 2, np.int32)
        lift_53(x, lo, hi, 0)
        np.testing.assert_array_equal(lo, lo_ref)
        np.testing.assert_array_equal(hi, hi_ref)

    @pytest.mark.parametrize("n", list(range(1, 40)))
    def test_lift_97_matches_oracle_bitwise(self, n):
        x = RNG.standard_normal(n) * 300.0
        lo_ref, hi_ref = dwt.forward_97_1d(x)
        lo = np.empty(n - n // 2, np.float64)
        hi = np.empty(n // 2, np.float64)
        lift_97(x, lo, hi, 0)
        # Bitwise, not allclose: byte-identical codestreams depend on it.
        np.testing.assert_array_equal(lo, lo_ref)
        np.testing.assert_array_equal(hi, hi_ref)

    @pytest.mark.parametrize("shape", [(3, 1), (3, 2), (4, 9), (5, 16), (1, 7)])
    def test_lift_axis1_matches_per_row_oracle(self, shape):
        h, w = shape
        xi = RNG.integers(-500, 500, size=shape).astype(np.int32)
        lo = np.empty((h, w - w // 2), np.int32)
        hi = np.empty((h, w // 2), np.int32)
        lift_53(xi, lo, hi, 1)
        for r in range(h):
            lo_ref, hi_ref = dwt.forward_53_1d(xi[r])
            np.testing.assert_array_equal(lo[r], lo_ref)
            np.testing.assert_array_equal(hi[r], hi_ref)

    def test_lift_53_int64_intermediates(self):
        # Magnitudes above I32_SAFE_MAX force the oracle's int64 lifting
        # path; coefficients still land in int32 storage (the contract for
        # any real bit depth), and the fused kernel must match it.
        x = RNG.integers(-(1 << 28), 1 << 28, size=33).astype(np.int64)
        lo_ref, hi_ref = dwt.forward_53_1d(x)
        assert lo_ref.dtype == np.int32
        lo = np.empty(17, np.int64)
        hi = np.empty(16, np.int64)
        lift_53(x, lo, hi, 0)
        np.testing.assert_array_equal(lo.astype(np.int32), lo_ref)
        np.testing.assert_array_equal(hi.astype(np.int32), hi_ref)


class TestFrontendDifferential:
    """run_frontend fused == reference, across the whole parameter space."""

    @pytest.mark.parametrize("shape", [(1, 1), (1, 9), (9, 1), (5, 5),
                                       (33, 17), (64, 48)])
    @pytest.mark.parametrize("lossless", [True, False], ids=["53", "97"])
    def test_degenerate_and_odd_shapes(self, shape, lossless):
        comps = [RNG.integers(0, 256, size=shape).astype(np.int32)]
        params = EncoderParams(lossless=lossless, levels=5)
        _assert_identical(*_frontends(comps, 8, params))

    @pytest.mark.parametrize("levels", [0, 1, 2, 3, 4, 5])
    @pytest.mark.parametrize("lossless", [True, False], ids=["53", "97"])
    def test_all_level_counts_rgb(self, levels, lossless):
        comps = [RNG.integers(0, 256, size=(21, 34)).astype(np.int32)
                 for _ in range(3)]
        params = EncoderParams(lossless=lossless, levels=levels)
        _assert_identical(*_frontends(comps, 8, params))

    @pytest.mark.parametrize("chunk", [1, 7, 32, 100, None])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_any_chunk_width_and_worker_count(self, chunk, workers):
        comps = [RNG.integers(0, 256, size=(40, 56)).astype(np.int32)
                 for _ in range(3)]
        for lossless in (True, False):
            params = EncoderParams(lossless=lossless, levels=3)
            _assert_identical(*_frontends(
                comps, 8, params, workers=workers, chunk_cols=chunk
            ))

    def test_deep_imagery_int64_fallback(self):
        # depth 16 with 13 effective levels -> depth + levels > 28 -> the
        # fused path must fall back to int64 and still match the oracle.
        comps = [RNG.integers(0, 1 << 16, size=(1, 8192)).astype(np.int32)]
        params = EncoderParams(lossless=True, levels=20)
        ref, fused = _frontends(comps, 16, params, workers=2, chunk_cols=33)
        assert ref.levels == 13
        _assert_identical(ref, fused)

    def test_timings_populated(self):
        comps = [RNG.integers(0, 256, size=(32, 32)).astype(np.int32)]
        for backend in ("reference", "fused"):
            t = run_frontend(
                comps, 8, EncoderParams(levels=3), backend=backend
            ).timings
            assert t.dwt > 0.0
            assert t.levelshift_mct > 0.0


class TestFullEncodeByteIdentity:
    """The acceptance criterion: identical codestreams, fused vs reference."""

    @pytest.mark.parametrize("channels", [1, 3], ids=["gray", "rgb"])
    @pytest.mark.parametrize("lossless", [True, False], ids=["lossless", "lossy"])
    def test_codestreams_identical(self, channels, lossless):
        img = watch_face_image(40, 56, channels=channels)
        kw = dict(lossless=lossless, rate=None if lossless else 0.5, levels=3)
        ref = encode(img, EncoderParams(dwt_backend="reference", **kw))
        for chunk, workers in [(None, 1), (5, 2), (64, 4)]:
            fused = encode(img, EncoderParams(
                dwt_backend="fused", dwt_chunk_cols=chunk, workers=workers, **kw
            ))
            assert fused.codestream == ref.codestream
        assert ref.timings is not None and ref.timings.total > 0.0
        assert ref.timings.tier1 > 0.0

    def test_degenerate_images_encode(self):
        for shape in [(1, 1), (1, 17), (17, 1)]:
            img = watch_face_image(*shape, channels=1)
            ref = encode(img, EncoderParams(dwt_backend="reference"))
            fused = encode(img, EncoderParams(dwt_backend="fused"))
            assert fused.codestream == ref.codestream


class TestBackendSelection:
    def test_backend_names(self):
        assert DWT_BACKENDS == ("auto", "reference", "fused")
        assert resolve_dwt_backend("auto") == "fused"
        assert resolve_dwt_backend(None) == "fused"
        assert resolve_dwt_backend("reference") == "reference"
        with pytest.raises(ValueError):
            resolve_dwt_backend("simd")

    def test_env_var_steers_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_DWT_BACKEND", "reference")
        assert resolve_dwt_backend("auto") == "reference"
        # Explicit names win over the environment.
        assert resolve_dwt_backend("fused") == "fused"
        monkeypatch.setenv("REPRO_DWT_BACKEND", "bogus")
        with pytest.raises(ValueError):
            resolve_dwt_backend("auto")

    def test_params_validation(self):
        with pytest.raises(ValueError):
            EncoderParams(dwt_backend="simd")
        with pytest.raises(ValueError):
            EncoderParams(dwt_chunk_cols=0)
        assert EncoderParams(dwt_backend="fused", dwt_chunk_cols=64).dwt_chunk_cols == 64


class TestChunkPolicy:
    def test_chunk_is_cache_line_multiple(self):
        assert resolve_chunk(1000, 33, 1) == 2 * CACHE_LINE_COLS
        assert resolve_chunk(1000, 1, 1) == CACHE_LINE_COLS
        assert resolve_chunk(1000, 64, 1) == 64

    def test_auto_policy(self):
        # Serial: one whole-extent chunk; parallel: ~2 chunks per worker.
        assert resolve_chunk(1000, None, 1) == 1000
        auto4 = resolve_chunk(1024, None, 4)
        assert auto4 % CACHE_LINE_COLS == 0
        assert 1 < -(-1024 // auto4) <= 9

    def test_invalid_chunk_rejected(self):
        with pytest.raises(ValueError):
            resolve_chunk(100, 0, 1)


class TestStageTimings:
    def test_as_dict_and_summary(self):
        t = StageTimings(levelshift_mct=0.001, dwt=0.25, quantize=0.002,
                         tier1=12.5, tier2=0.03, total=13.0)
        d = t.as_dict()
        assert set(d) == {"levelshift_mct", "dwt", "quantize", "tier1",
                          "tier2", "rate_control", "total"}
        s = t.summary()
        assert "dwt 0.25s" in s and "tier1 12.5s" in s
        assert "rate" not in s  # zero rate-control stage is omitted
        assert "rate" in StageTimings(rate_control=0.1).summary()


class TestAutoSerial:
    """Small images skip the thread fan-out (PR 4 scaling fix)."""

    def test_threshold_is_model_derived(self, monkeypatch):
        # Without env override the threshold comes from the planner's
        # cutover model, pinned to reproduce the legacy 2^21 clamp under
        # the default calibration (and clamped to [2^18, 2^23] always).
        monkeypatch.delenv(AUTO_SERIAL_ENV, raising=False)
        from repro.plan.calibration import DEFAULT_HOST_CALIBRATION
        from repro.plan.cutovers import dwt_serial_cutover_samples

        assert dwt_serial_cutover_samples(DEFAULT_HOST_CALIBRATION) == 1 << 21
        assert (1 << 18) <= dwt_serial_threshold() <= (1 << 23)

    def test_small_image_clamps_to_serial(self, monkeypatch):
        monkeypatch.delenv(AUTO_SERIAL_ENV, raising=False)
        threshold = dwt_serial_threshold()
        assert auto_serial_workers(4, threshold - 1) == 1
        assert auto_serial_workers(8, (1 << 18) - 1) == 1  # below min clamp

    def test_large_image_keeps_workers(self, monkeypatch):
        monkeypatch.delenv(AUTO_SERIAL_ENV, raising=False)
        threshold = dwt_serial_threshold()
        assert auto_serial_workers(4, threshold) == 4
        assert auto_serial_workers(2, 1 << 23) == 2  # above max clamp

    def test_serial_request_untouched(self, monkeypatch):
        monkeypatch.delenv(AUTO_SERIAL_ENV, raising=False)
        assert auto_serial_workers(1, 10) == 1

    def test_env_zero_disables_clamp(self, monkeypatch):
        monkeypatch.setenv(AUTO_SERIAL_ENV, "0")
        assert auto_serial_workers(4, 10) == 4

    def test_env_overrides_threshold(self, monkeypatch):
        monkeypatch.setenv(AUTO_SERIAL_ENV, "50")
        assert auto_serial_workers(4, 49) == 1
        assert auto_serial_workers(4, 50) == 4

    def test_env_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv(AUTO_SERIAL_ENV, "lots")
        with pytest.raises(ValueError):
            auto_serial_workers(4, 10)

    def test_frontend_applies_clamp(self, monkeypatch):
        # With the clamp active a small multi-worker run must equal the
        # serial one *and* hand the chunk queue a single worker.
        monkeypatch.delenv(AUTO_SERIAL_ENV, raising=False)
        from repro.jpeg2000 import dwt_fast

        calls = []
        real = dwt_fast.ChunkWorkQueue

        class Spy(real):
            def __init__(self, *a, **kw):
                calls.append((a, kw))
                super().__init__(*a, **kw)

        monkeypatch.setattr(dwt_fast, "ChunkWorkQueue", Spy)
        img = watch_face_image(40, 56, channels=1)
        comps, depth = __import__(
            "repro.jpeg2000.encoder", fromlist=["_normalize_image"]
        )._normalize_image(img)
        params = EncoderParams(lossless=True, levels=3)
        ref, fused = _frontends(comps, depth, params, workers=4)
        _assert_identical(ref, fused)
        # Every queue the front end built was clamped down to one worker.
        assert calls and all(a == (1,) and not kw for a, kw in calls)
