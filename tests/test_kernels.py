"""Kernel characterization tests."""

import pytest

from repro.cell.ppe import PPECore
from repro.cell.spe import SPECore
from repro.kernels.dwt_kernels import (
    DwtVariant,
    dwt_mix,
    sample_visits_per_pixel,
    vertical_dma_passes,
)
from repro.kernels.levelshift import levelshift_mct_mix
from repro.kernels.quantize_kernel import quantize_mix
from repro.kernels.readconv import readconv_mix
from repro.kernels.specs import KernelSpec
from repro.kernels.tier1_kernel import tier1_block_cost_s, tier1_symbol_mix


class TestDmaPasses:
    def test_paper_pass_counts(self):
        """Section 4: '3 or 6 steps in the vertical filtering involve 3 or 6
        DMA data transfer of the entire column group data' and the merged
        variant halves the splitting step to land at 1.5."""
        assert vertical_dma_passes(DwtVariant.NAIVE, True) == 3.0
        assert vertical_dma_passes(DwtVariant.NAIVE, False) == 6.0
        assert vertical_dma_passes(DwtVariant.MERGED, True) == 1.5
        assert vertical_dma_passes(DwtVariant.MERGED, False) == 1.5

    def test_interleaving_strictly_improves(self):
        for lossless in (True, False):
            n = vertical_dma_passes(DwtVariant.NAIVE, lossless)
            i = vertical_dma_passes(DwtVariant.INTERLEAVED, lossless)
            m = vertical_dma_passes(DwtVariant.MERGED, lossless)
            assert m < i < n

    def test_lossy_gains_more_from_merging(self):
        """6 -> 1.5 (4x) for lossy vs 3 -> 1.5 (2x) for lossless."""
        gain_ll = vertical_dma_passes(DwtVariant.NAIVE, True) / 1.5
        gain_lossy = vertical_dma_passes(DwtVariant.NAIVE, False) / 1.5
        assert gain_lossy == 2 * gain_ll


class TestSampleVisits:
    def test_zero_levels(self):
        assert sample_visits_per_pixel(0) == 0.0

    def test_one_level_two_directions(self):
        assert sample_visits_per_pixel(1) == 2.0

    def test_converges_to_8_thirds(self):
        assert sample_visits_per_pixel(10) == pytest.approx(8 / 3, rel=1e-3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            sample_visits_per_pixel(-1)


class TestMixes:
    def test_fixed_point_dwt_costs_more_on_spe(self):
        spe = SPECore()
        assert spe.seconds_per_element(dwt_mix(False, fixed_point=True)) > \
            spe.seconds_per_element(dwt_mix(False, fixed_point=False))

    def test_lossless_dwt_cheapest(self):
        spe = SPECore()
        assert spe.seconds_per_element(dwt_mix(True)) < \
            spe.seconds_per_element(dwt_mix(False))

    def test_pixel_kernels_vectorizable(self):
        for mix in (levelshift_mct_mix(True, 3), levelshift_mct_mix(False, 3),
                    quantize_mix(), readconv_mix()):
            assert mix.vectorizable

    def test_tier1_not_vectorizable(self):
        assert not tier1_symbol_mix().vectorizable

    def test_ict_costs_more_than_rct(self):
        spe = SPECore()
        assert spe.seconds_per_element(levelshift_mct_mix(False, 3)) > \
            spe.seconds_per_element(levelshift_mct_mix(True, 3))

    def test_levelshift_rejects_bad_comps(self):
        with pytest.raises(ValueError):
            levelshift_mct_mix(True, 2)


class TestTier1BlockCost:
    def test_cost_grows_with_symbols(self):
        spe = SPECore()
        a = tier1_block_cost_s(1000, 4096, spe)
        b = tier1_block_cost_s(10000, 4096, spe)
        assert b > a

    def test_empty_block_costs_only_overhead(self):
        spe = SPECore()
        cost = tier1_block_cost_s(0, 0, spe)
        assert 0 < cost < 1e-4

    def test_ppe_cheaper_per_block(self):
        c_spe = tier1_block_cost_s(5000, 4096, SPECore())
        c_ppe = tier1_block_cost_s(5000, 4096, PPECore())
        assert c_ppe < c_spe

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            tier1_block_cost_s(-1, 0, SPECore())


class TestKernelSpec:
    def test_traffic_sum(self):
        spec = KernelSpec("k", dwt_mix(True), bytes_in=4.0, bytes_out=4.0)
        assert spec.bytes_total == 8.0

    def test_rejects_negative_traffic(self):
        with pytest.raises(ValueError):
            KernelSpec("k", dwt_mix(True), bytes_in=-1.0, bytes_out=0.0)
