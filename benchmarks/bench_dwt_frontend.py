"""DWT front-end benchmark: reference vs fused, serial vs chunk-parallel.

Measures the PR 3 tentpole — the fused, chunked front end (level shift +
MCT + DWT + quantize) of :mod:`repro.jpeg2000.dwt_fast` — against the
naive per-stage oracle, for both filters and several image sizes, and
records the numbers to ``BENCH_dwt.json`` so the performance trajectory
is tracked across PRs.  Every fused run is asserted byte-identical to the
reference subbands before its timing counts.

Usage::

    PYTHONPATH=src python benchmarks/bench_dwt_frontend.py           # full
    PYTHONPATH=src python benchmarks/bench_dwt_frontend.py --quick   # CI

``--quick`` runs a single 1024x1024 gray plane and fails (exit 1) unless
the fused serial path is at least 1.5x the reference — the CI floor.
Chunk-parallel scaling is machine-dependent: on a single-core container
threads cannot beat serial, so the JSON records ``cpu_count`` alongside
every number — read worker speedups only against it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform

import numpy as np

from _util import add_repeats_flag, bench_report, check_repeats, time_fn, write_bench_json
from repro.image.synthetic import watch_face_image
from repro.jpeg2000.dwt_fast import run_frontend
from repro.jpeg2000.encoder import _normalize_image
from repro.jpeg2000.params import EncoderParams

WORKER_COUNTS = (2, 4)
QUICK_SPEEDUP_FLOOR = 1.5


def _identical(a, b) -> bool:
    """Byte-identical decomposition lists (per subband, dtype included)."""
    for da, db in zip(a, b):
        if da.ll.dtype != db.ll.dtype or not np.array_equal(da.ll, db.ll):
            return False
        for la, lb in zip(da.details, db.details):
            for ba, bb in zip(la, lb):
                if ba.dtype != bb.dtype or not np.array_equal(ba, bb):
                    return False
    return True


def bench_case(size: int, channels: int, lossless: bool, repeats: int) -> dict:
    img = watch_face_image(size, size, channels=channels)
    comps, depth = _normalize_image(img)
    params = EncoderParams(
        lossless=lossless, rate=None if lossless else 0.25, levels=5
    )
    out = {
        "image": f"{size}x{size}x{channels}",
        "filter": "5/3+RCT" if lossless else "9/7+ICT",
    }

    reference = run_frontend(comps, depth, params, backend="reference")
    out["reference"] = time_fn(
        lambda: run_frontend(comps, depth, params, backend="reference"), repeats
    )
    identical = True
    fused = run_frontend(comps, depth, params, backend="fused", workers=1)
    identical &= _identical(reference.decomps, fused.decomps)
    out["fused_serial"] = time_fn(
        lambda: run_frontend(comps, depth, params, backend="fused", workers=1),
        repeats,
    )
    for workers in WORKER_COUNTS:
        fused = run_frontend(comps, depth, params, backend="fused", workers=workers)
        identical &= _identical(reference.decomps, fused.decomps)
        out[f"fused_{workers}w"] = time_fn(
            lambda w=workers: run_frontend(
                comps, depth, params, backend="fused", workers=w
            ),
            repeats,
        )

    ref = out["reference"]["median_s"]
    serial = out["fused_serial"]["median_s"]
    out["speedup_fused_serial"] = ref / serial if serial > 0 else float("inf")
    for workers in WORKER_COUNTS:
        m = out[f"fused_{workers}w"]["median_s"]
        out[f"scaling_1_to_{workers}w"] = serial / m if m > 0 else float("inf")
    out["subbands_identical"] = identical
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="single 1024x1024 plane + speedup floor (CI)")
    ap.add_argument("--output", default=None,
                    help="JSON path (default: BENCH_dwt.json at repo root)")
    add_repeats_flag(ap)
    args = ap.parse_args(argv)
    repeats = check_repeats(args.repeats)

    if args.quick:
        sizes = [(1024, 1, True), (1024, 1, False)]
    else:
        sizes = [
            (512, 3, True), (512, 3, False),
            (1024, 1, True), (1024, 1, False),
            (2048, 3, True), (2048, 3, False),
        ]
    cases = [(s, ch, ll, repeats) for s, ch, ll in sizes]

    report = bench_report("dwt_frontend", quick=args.quick, cases=[])
    ok = True
    for size, channels, lossless, repeats in cases:
        case = bench_case(size, channels, lossless, repeats)
        report["cases"].append(case)
        ok &= case["subbands_identical"]
        scaling = "  ".join(
            f"{w}w {case[f'scaling_1_to_{w}w']:.2f}x" for w in WORKER_COUNTS
        )
        print(f"{case['image']:>12} {case['filter']:<8}"
              f" reference {case['reference']['median_s']*1e3:8.1f} ms"
              f"  fused {case['fused_serial']['median_s']*1e3:8.1f} ms"
              f"  ({case['speedup_fused_serial']:.2f}x)"
              f"  scaling: {scaling}"
              f"  identical: {case['subbands_identical']}")
    print(f"cpu_count={os.cpu_count()}")

    write_bench_json(report, "BENCH_dwt.json", args.output)

    if not ok:
        print("FAIL: fused subbands differ from reference")
        return 1
    if args.quick:
        # The CI floor is asserted on the 5/3 plane (the paper's default
        # path); the 9/7 case is measured and recorded but not gated — its
        # reference is already float64 throughout, so the fused win is
        # structural (fewer passes), not dtype, and sits closer to the bar.
        gated = [c for c in report["cases"] if c["filter"].startswith("5/3")]
        worst = min(c["speedup_fused_serial"] for c in gated)
        if worst < QUICK_SPEEDUP_FLOOR:
            print(f"FAIL: fused serial speedup {worst:.2f}x "
                  f"< {QUICK_SPEEDUP_FLOOR}x floor")
            return 1
        print(f"quick gate passed: fused >= {QUICK_SPEEDUP_FLOOR}x reference")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
