"""Figure 7 — EBCOT (Tier-1 + Tier-2) performance vs Muta et al.

Paper shape targets: our EBCOT beats Muta's reported numbers and — the key
scalability claim — Muta's EBCOT "does not scale above a single Cell/B.E.
processor" because their PPE centrally dispatches 32x32 blocks, while our
decentralized work queue keeps scaling to the second chip.
"""

from repro.baselines.muta import MutaConfig, MutaPipelineModel
from repro.cell.machine import CellMachine
from repro.core.pipeline import PipelineModel


def _ours_ebcot(stats, chips: int) -> float:
    machine = CellMachine(chips=chips, num_spes=8 * chips, num_ppe_threads=chips)
    tl = PipelineModel(machine, stats).simulate()
    return tl.stage("tier1").wall_s + tl.stage("tier2").wall_s


def test_fig7_ebcot_comparison(benchmark, workload_frame):
    stats = workload_frame

    def bars():
        return {
            "Muta0": MutaPipelineModel(stats, MutaConfig.MUTA0).ebcot_reported_time(),
            "Muta1": MutaPipelineModel(stats, MutaConfig.MUTA1).ebcot_reported_time(),
            "Ours (1 Cell/B.E.)": _ours_ebcot(stats, 1),
            "Ours (2 Cell/B.E.)": _ours_ebcot(stats, 2),
        }

    t = benchmark(bars)
    muta0 = t["Muta0"]
    print("\nFigure 7 — EBCOT (Tier-1 + Tier-2) performance")
    print(f"{'configuration':<22} {'time (ms)':>10} {'speedup vs Muta0':>18}")
    for name, v in t.items():
        print(f"{name:<22} {v * 1e3:>10.1f} {muta0 / v:>18.2f}")
    assert t["Ours (1 Cell/B.E.)"] < muta0
    assert t["Ours (2 Cell/B.E.)"] < 0.75 * t["Ours (1 Cell/B.E.)"]  # we scale
    # they do not scale past one chip: Muta1 uses 16 SPEs yet is no faster
    assert t["Muta1"] >= 0.9 * muta0
