"""Decode-path benchmark: scalar reference vs vectorized/batched decoder.

The decoder acceptance bar mirrors the encoder's: the batched backend must
decode the paper's working set (2048x2048x3 lossless, 5 levels) at least
3x faster than the scalar reference on one core, while reconstructing
sample-identical output (asserted before any timing).  ``--quick`` runs a
768x768x3 image with a 2x floor — the CI ``bench-decode`` job's gate.

The reference decoder is timed with a single repeat: it is minutes per
image at full size (that cost is the whole reason the fast path exists),
and it only provides the denominator.

Usage:
    PYTHONPATH=src python benchmarks/bench_decode.py [--quick] [--gate]
        [--repeats N] [--output BENCH_decode.json]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from _util import add_repeats_flag, bench_report, check_repeats, time_fn, write_bench_json
from repro.image.synthetic import watch_face_image
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.params import EncoderParams
from repro.jpeg2000 import _t1_dec_native

#: Single-core speedup floors (batched backend vs scalar reference).
FULL_SPEEDUP_FLOOR = 3.0
QUICK_SPEEDUP_FLOOR = 2.0

WORKER_COUNTS = (1, 2, 4)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="768x768x3 with a 2x floor (CI gate)")
    ap.add_argument("--gate", action="store_true",
                    help="exit 1 if the speedup floor is missed")
    ap.add_argument("--output", default=None,
                    help="JSON path (default: BENCH_decode.json at repo root)")
    add_repeats_flag(ap)
    args = ap.parse_args(argv)
    repeats = check_repeats(args.repeats)

    from repro.jpeg2000.decoder import decode, decode_reference

    size = 768 if args.quick else 2048
    floor = QUICK_SPEEDUP_FLOOR if args.quick else FULL_SPEEDUP_FLOOR
    image = watch_face_image(size, size, channels=3)
    params = EncoderParams(lossless=True, levels=5)
    codestream = encode(image, params).codestream

    # Identity first: a fast decoder that decodes wrong is not a result.
    expected = None

    def run_reference():
        nonlocal expected
        expected = decode_reference(codestream)

    t0 = time.perf_counter()
    run_reference()
    ref_s = time.perf_counter() - t0
    reference = {"median_s": ref_s, "min_s": ref_s, "repeats": 1}
    assert np.array_equal(expected, image), "reference decode != input"

    backends = {}
    for backend in ("vectorized", "batched"):
        out = decode(codestream, backend=backend, workers=1)
        identical = bool(np.array_equal(out, expected))
        timing = time_fn(
            lambda b=backend: decode(codestream, backend=b, workers=1),
            repeats,
        )
        timing["identical_to_reference"] = identical
        timing["speedup_vs_reference"] = ref_s / timing["median_s"]
        backends[backend] = timing
        print(f"{size}x{size}x3 decode, {backend:<10}:"
              f" {timing['median_s']:8.3f} s"
              f"  ({timing['speedup_vs_reference']:.1f}x vs reference"
              f" {ref_s:.1f} s)  identical: {identical}")

    workers_scaling = {}
    base = backends["batched"]["median_s"]
    for w in WORKER_COUNTS:
        out = decode(codestream, backend="batched", workers=w)
        identical = bool(np.array_equal(out, expected))
        timing = time_fn(
            lambda w=w: decode(codestream, backend="batched", workers=w),
            repeats,
        )
        timing["identical_to_reference"] = identical
        timing["speedup_vs_1"] = base / timing["median_s"]
        workers_scaling[str(w)] = timing
        print(f"{size}x{size}x3 decode, batched {w}w :"
              f" {timing['median_s']:8.3f} s"
              f"  ({timing['speedup_vs_1']:.2f}x vs 1w)"
              f"  identical: {identical}")

    speedup = backends["batched"]["speedup_vs_reference"]
    identical = (
        all(b["identical_to_reference"] for b in backends.values())
        and all(w["identical_to_reference"] for w in workers_scaling.values())
    )
    passed = identical and speedup >= floor
    print(f"single-core batched speedup {speedup:.1f}x"
          f" (acceptance >= {floor}x), all outputs identical: {identical}")

    report = bench_report(
        "decode",
        machine_extra={
            "t1_native_kernel": _t1_dec_native.native_decode_block is not None,
        },
        quick=args.quick,
        image={"size": size, "channels": 3, "levels": 5, "lossless": True,
               "codestream_bytes": len(codestream)},
        reference=reference,
        backends=backends,
        batched_workers=workers_scaling,
        acceptance={"threshold": floor, "speedup": speedup,
                    "identical": identical, "passed": passed},
    )
    write_bench_json(report, "BENCH_decode.json", args.output)

    if not identical:
        return 1  # correctness criteria fail loudly everywhere
    if args.gate and speedup < floor:
        print(f"FAIL: batched decode {speedup:.2f}x < {floor}x floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
