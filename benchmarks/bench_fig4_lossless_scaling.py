"""Figure 4 — lossless encoding: execution time and speedup vs SPE count.

Regenerates the figure's series: execution time for 1-16 SPEs (the 9-16 SPE
points span the second QS20 chip) plus the "+1 PPE" / "+2 PPE" variants
where additional PPE threads participate in Tier-1 encoding.

Paper shape targets: near-linear speedup in SPEs; 6.6x at 8 SPEs vs 1 SPE;
extra speedup from additional PPE threads; 6.9x vs the PPE-only case.
"""

from repro.cell.machine import CellMachine
from repro.core.pipeline import PipelineModel

SPE_COUNTS = [1, 2, 4, 6, 8, 12, 16]


def _time(stats, spes: int, ppes: int) -> float:
    chips = 2 if (spes > 8 or ppes > 1) else 1
    machine = CellMachine(chips=chips, num_spes=spes, num_ppe_threads=ppes)
    return PipelineModel(machine, stats).simulate().total_s


def test_fig4_lossless_scaling(benchmark, workload_lossless):
    stats = workload_lossless
    times = benchmark(lambda: {n: _time(stats, n, 1) for n in SPE_COUNTS})
    base = times[1]
    print("\nFigure 4 — lossless encoding time and speedup")
    print(f"{'SPEs':>5} {'time (s)':>10} {'speedup':>9}")
    for n in SPE_COUNTS:
        print(f"{n:>5} {times[n]:>10.3f} {base / times[n]:>9.2f}")
    s8 = base / times[8]
    print(f"speedup @8 SPEs: {s8:.2f} (paper: 6.6)")
    assert 5.5 <= s8 <= 7.8
    # near-linear: monotone and not super-linear
    for a, b in zip(SPE_COUNTS, SPE_COUNTS[1:]):
        assert times[b] < times[a]


def test_fig4_additional_ppe_threads(benchmark, workload_lossless):
    stats = workload_lossless
    rows = benchmark(
        lambda: {ppes: _time(stats, 16, ppes) for ppes in (1, 2, 3, 4)}
    )
    print("\nFigure 4 (right side) — 16 SPEs with additional PPE threads in Tier-1")
    for ppes, t in rows.items():
        print(f"16 SPE + {ppes} PPE thread(s): {t:.3f} s")
    assert rows[2] < rows[1]
    assert rows[4] <= rows[2]


def test_fig4_vs_ppe_only(benchmark, workload_lossless):
    stats = workload_lossless

    def measure():
        ppe_only = PipelineModel(
            CellMachine(num_spes=0, num_ppe_threads=1), stats
        ).simulate().total_s
        return ppe_only, _time(stats, 8, 1)

    ppe_only, cell8 = benchmark(measure)
    ratio = ppe_only / cell8
    print(f"\nPPE-only {ppe_only:.3f} s vs 8 SPE + PPE {cell8:.3f} s -> "
          f"{ratio:.2f}x (paper: 6.9)")
    assert 5.0 <= ratio <= 8.5
