"""Ablation A3 — fixed-point vs floating-point real arithmetic (Section 4).

Jasper represents real numbers in Q13 fixed point; the paper replaces that
with single-precision floats on the Cell because the SPE must emulate the
32-bit integer multiply (Table 1).  This bench regenerates the trade on
both architectures and the numerical cost of the fixed representation.
"""

import numpy as np

from repro.baselines.pentium4 import P4PipelineModel
from repro.cell.machine import SINGLE_CELL
from repro.cell.spe import SPECore
from repro.core.pipeline import PipelineModel, PipelineOptions
from repro.jpeg2000.fixmath import max_fixed_error_vs_float
from repro.kernels.dwt_kernels import dwt_mix


def test_ablation_spe_kernel_cost(benchmark):
    spe = SPECore()
    t = benchmark(
        lambda: {
            "float": spe.seconds_per_element(dwt_mix(False, fixed_point=False)),
            "fixed": spe.seconds_per_element(dwt_mix(False, fixed_point=True)),
        }
    )
    print("\nAblation A3 — 9/7 DWT per sample-visit on one SPE")
    for k, v in t.items():
        print(f"{k:>6}: {v * 1e9:6.2f} ns")
    print(f"fixed/float: {t['fixed'] / t['float']:.2f}x "
          "(fixed point loses its benefit on the Cell/B.E.)")
    assert t["fixed"] > 1.5 * t["float"]


def test_ablation_full_lossy_encode(benchmark, workload_lossy):
    stats = workload_lossy

    def times():
        flt = PipelineModel(SINGLE_CELL, stats,
                            PipelineOptions(fixed_point=False)).simulate()
        fix = PipelineModel(SINGLE_CELL, stats,
                            PipelineOptions(fixed_point=True)).simulate()
        return flt, fix

    flt, fix = benchmark(times)
    print("\nAblation A3 — lossy encode, Cell 8 SPE")
    print(f"float DWT: total {flt.total_s:.3f} s (dwt {flt.stage('dwt').wall_s*1e3:.1f} ms)")
    print(f"fixed DWT: total {fix.total_s:.3f} s (dwt {fix.stage('dwt').wall_s*1e3:.1f} ms)")
    assert fix.stage("dwt").wall_s > flt.stage("dwt").wall_s
    assert fix.total_s > flt.total_s


def test_ablation_numerical_cost_of_fixed(benchmark):
    """The fixed representation is an *approximation*: quantify it."""
    rng = np.random.default_rng(0)
    x = rng.integers(-128, 128, size=(512, 8)).astype(np.int32)
    err = benchmark(lambda: max_fixed_error_vs_float(x))
    print(f"\nmax |fixed - float| 9/7 coefficient error: {err:.5f} "
          "(Q13 rounding)")
    assert 0 < err < 0.1
