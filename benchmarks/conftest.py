"""Benchmark fixtures: the paper's workload, measured once per session.

The paper encodes a 28.3 MB photograph (3072x3072x3 bytes).  We functionally
encode a 192x192 crop of the synthetic watch image with the paper's exact
coding options and scale its statistics by 16 per axis — exactly 3072x3072x3
— for the performance model.  The 1920x1080-class frame for the Muta
comparison (Figures 6-8) uses a x6 scaling (1152x1152x3 ≈ 2 Mpixel HD frame
equivalent).
"""

from __future__ import annotations

import pytest

from repro.image.synthetic import watch_face_image
from repro.jpeg2000.encoder import EncodeResult, WorkloadStats, encode, scale_workload
from repro.jpeg2000.params import EncoderParams

PAPER_SCALE = 16   # 192 * 16 = 3072
FRAME_SCALE = 6    # 192 * 6 = 1152 ≈ HD frame


@pytest.fixture(scope="session")
def crop_lossless() -> EncodeResult:
    img = watch_face_image(192, 192, channels=3)
    return encode(img, EncoderParams.lossless_default())


@pytest.fixture(scope="session")
def crop_lossy() -> EncodeResult:
    img = watch_face_image(192, 192, channels=3)
    return encode(img, EncoderParams.lossy_rate(0.1))


@pytest.fixture(scope="session")
def workload_lossless(crop_lossless) -> WorkloadStats:
    """The paper's lossless workload: 3072x3072x3 = 28.3 MB."""
    return scale_workload(crop_lossless.stats, PAPER_SCALE)


@pytest.fixture(scope="session")
def workload_lossy(crop_lossy) -> WorkloadStats:
    return scale_workload(crop_lossy.stats, PAPER_SCALE)


@pytest.fixture(scope="session")
def workload_frame(crop_lossless) -> WorkloadStats:
    """HD-frame-sized lossless workload for the Muta comparison."""
    return scale_workload(crop_lossless.stats, FRAME_SCALE)
