"""Figure 9 — Cell/B.E. vs Intel Pentium IV 3.2 GHz.

Regenerates the figure's four bar groups on the 28.3 MB watch image:
overall lossless, overall lossy, DWT lossless, DWT lossy, each as
(P4 time) / (Cell time).

Paper targets: 3.2x lossless, 2.7x lossy, 9.1x DWT lossless, 15x DWT lossy.
The lossy DWT gap is the largest because the P4 runs Jasper's fixed-point
9/7 while the Cell runs vectorized single-precision floats.
"""

from repro.baselines.pentium4 import P4PipelineModel
from repro.cell.machine import SINGLE_CELL
from repro.core.pipeline import PipelineModel

PAPER = {
    "overall lossless": 3.2,
    "overall lossy": 2.7,
    "DWT lossless": 9.1,
    "DWT lossy": 15.0,
}


def test_fig9_cell_vs_pentium4(benchmark, workload_lossless, workload_lossy):
    def ratios():
        out = {}
        for tag, stats in (("lossless", workload_lossless),
                           ("lossy", workload_lossy)):
            p4 = P4PipelineModel(stats).simulate()
            cell = PipelineModel(SINGLE_CELL, stats).simulate()
            out[f"overall {tag}"] = (p4.total_s, cell.total_s)
            out[f"DWT {tag}"] = (p4.stage("dwt").wall_s,
                                 cell.stage("dwt").wall_s)
        return out

    t = benchmark(ratios)
    print("\nFigure 9 — Cell/B.E. (8 SPE + PPE) vs Pentium IV 3.2 GHz")
    print(f"{'metric':<18} {'P4 (s)':>9} {'Cell (s)':>9} {'speedup':>8} {'paper':>7}")
    for name, (p4, cell) in t.items():
        print(f"{name:<18} {p4:>9.3f} {cell:>9.3f} {p4 / cell:>8.2f} "
              f"{PAPER[name]:>7.1f}")

    assert 2.4 <= t["overall lossless"][0] / t["overall lossless"][1] <= 4.2
    assert 2.0 <= t["overall lossy"][0] / t["overall lossy"][1] <= 3.6
    assert 6.5 <= t["DWT lossless"][0] / t["DWT lossless"][1] <= 12.0
    assert 11.0 <= t["DWT lossy"][0] / t["DWT lossy"][1] <= 19.0


def test_fig9_lossy_dwt_gap_exceeds_lossless(benchmark, workload_lossless,
                                             workload_lossy):
    """The 15x vs 9.1x ordering: fixed point hurts the P4's 9/7 most."""

    def gap(stats):
        p4 = P4PipelineModel(stats).simulate().stage("dwt").wall_s
        cell = PipelineModel(SINGLE_CELL, stats).simulate().stage("dwt").wall_s
        return p4 / cell

    ratios = benchmark(lambda: (gap(workload_lossless), gap(workload_lossy)))
    print(f"\nDWT speedup: lossless {ratios[0]:.1f}x, lossy {ratios[1]:.1f}x")
    assert ratios[1] > ratios[0]
