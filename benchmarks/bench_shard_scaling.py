"""Shard-scaling benchmark: one port, N shard processes, 16-image burst.

Replays a 16-request concurrent burst of *unique* images over HTTP
against ``--shards`` in {1, 2, 4} and records imgs/s plus p50/p95 per
shard count to ``BENCH_shards.json``.  Unique content per request (and
per repeat) keeps every cache cold, so the scaling section measures the
front end, not deduplication; a separate ``cached`` section then fires
16 *identical* concurrent requests at 2 shards and records that the
cluster encoded exactly once (cross-shard single-flight + bus hits).

Issue acceptance: >= 1.7x throughput at 4 shards vs 1 shard on the
16-image concurrent burst, byte-identical codestreams at every shard
count.  Shard scaling is machine-dependent — a 1-core container cannot
run four shards faster than one — so ``cpu_count`` is recorded alongside
every number and the ratio gate (``--gate``) is meant for multi-core CI
runners.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py          # full
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --smoke  # CI
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --gate   # enforce
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import threading
import time
import urllib.request

import numpy as np

from _util import add_repeats_flag, bench_report, check_repeats, write_bench_json
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.params import EncoderParams
from repro.service import ServiceConfig
from repro.service.sharding import ShardCluster, ShardClusterConfig

BURST = 16
SHARD_COUNTS = (1, 2, 4)
ACCEPT_SPEEDUP = 1.7
LEVELS = 3


def _quantile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, round(q * (len(ordered) - 1)))]


def _summary(latencies: list[float], wall_s: float) -> dict:
    return {
        "requests": len(latencies),
        "wall_s": wall_s,
        "imgs_per_s": len(latencies) / wall_s if wall_s > 0 else 0.0,
        "p50_s": _quantile(latencies, 0.50),
        "p95_s": _quantile(latencies, 0.95),
        "mean_s": statistics.fmean(latencies),
    }


def _pgm(image: np.ndarray) -> bytes:
    h, w = image.shape
    return b"P5\n%d %d\n255\n" % (w, h) + image.tobytes()


def make_image(seed: int, size: int) -> np.ndarray:
    rng = np.random.default_rng(2008 + seed)
    return rng.integers(0, 256, size=(size, size), dtype=np.uint8)


def _wait_healthy(url: str, timeout_s: float = 60.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url + "/healthz", timeout=5) as resp:
                if resp.status == 200:
                    return
        except Exception:
            time.sleep(0.1)
    raise TimeoutError(f"cluster at {url} never became healthy")


def _post(url: str, body: bytes):
    req = urllib.request.Request(url, data=body, method="POST")
    return urllib.request.urlopen(req, timeout=300)


def _fire_burst(url: str, bodies: list[bytes], oracles: list[bytes]) -> dict:
    """All requests concurrently; returns summary + determinism flag."""
    latencies = [0.0] * len(bodies)
    shards_seen: set[str] = set()
    mismatches: list[int] = []
    lock = threading.Lock()

    def one(i: int) -> None:
        t = time.perf_counter()
        with _post(url + f"/encode?levels={LEVELS}", bodies[i]) as resp:
            data = resp.read()
            shard = resp.headers.get("X-Shard", "0")
        latencies[i] = time.perf_counter() - t
        with lock:
            shards_seen.add(shard)
            if oracles[i] is not None and data != oracles[i]:
                mismatches.append(i)

    threads = [threading.Thread(target=one, args=(i,))
               for i in range(len(bodies))]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    out = _summary(latencies, time.perf_counter() - t0)
    out["shards_seen"] = sorted(shards_seen)
    out["deterministic"] = not mismatches
    return out


def bench_shards(shards: int, size: int, repeats: int,
                 offline_cache: dict) -> dict:
    """Median cold-cache burst through a ``shards``-shard cluster."""
    params = EncoderParams(levels=LEVELS)
    config = ShardClusterConfig(
        shards=shards,
        service=ServiceConfig(workers=1, cache_bytes=0),
        quiet=True,
        bus_cache_bytes=0,  # leases still coalesce; nothing is stored
        heartbeat_s=0.2,
    )
    runs = []
    with ShardCluster(config) as cluster:
        url = f"http://127.0.0.1:{cluster.port}"
        _wait_healthy(url)
        for rep in range(repeats):
            seeds = [rep * BURST + i for i in range(BURST)]
            images = [make_image(s, size) for s in seeds]
            bodies = [_pgm(img) for img in images]
            oracles = []
            for s, img in zip(seeds, images):
                if s not in offline_cache:
                    offline_cache[s] = encode(img, params).codestream
                oracles.append(offline_cache[s])
            runs.append(_fire_burst(url, bodies, oracles))
    runs.sort(key=lambda r: r["imgs_per_s"])
    chosen = dict(runs[len(runs) // 2])
    chosen["repeats"] = repeats
    chosen["deterministic"] = all(r["deterministic"] for r in runs)
    chosen["shards"] = shards
    return chosen


def bench_cached(size: int) -> dict:
    """16 identical concurrent requests at 2 shards: one encode, many hits."""
    image = make_image(999_983, size)
    body = _pgm(image)
    oracle = encode(image, EncoderParams(levels=LEVELS)).codestream
    config = ShardClusterConfig(
        shards=2,
        service=ServiceConfig(workers=1),
        quiet=True,
        heartbeat_s=0.2,
    )
    with ShardCluster(config) as cluster:
        url = f"http://127.0.0.1:{cluster.port}"
        _wait_healthy(url)
        out = _fire_burst(url, [body] * BURST, [oracle] * BURST)
        time.sleep(0.6)  # let every shard's heartbeat reach the bus
        metrics = json.load(
            urllib.request.urlopen(url + "/metrics", timeout=10)
        )
        stats = json.load(urllib.request.urlopen(url + "/stats", timeout=10))
        aggregate = metrics["aggregate"]
        out["cluster_encodes"] = aggregate["images_encoded_total"]["value"]
        out["remote_cache_hits"] = aggregate["remote_cache_hits_total"]["value"]
        out["cache_hit_ratio"] = aggregate["cache_hit_ratio"]["value"]
        out["bus"] = stats["cluster"]["cache_bus"]
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="smaller images and only {1, 2} shards (CI)")
    ap.add_argument("--gate", action="store_true",
                    help=f"exit 1 unless 4-vs-1 speedup >= {ACCEPT_SPEEDUP}x "
                         "(multi-core runners only)")
    ap.add_argument("--output", default=None,
                    help="JSON path (default: BENCH_shards.json at repo root)")
    add_repeats_flag(ap)
    args = ap.parse_args(argv)
    repeats = check_repeats(args.repeats)

    size = 64 if args.smoke else 96
    shard_counts = (1, 2) if args.smoke else SHARD_COUNTS
    cpu_count = os.cpu_count() or 1

    print(f"burst: {BURST} unique concurrent requests, image {size}x{size}, "
          f"shard counts {shard_counts}, {cpu_count} cpu(s)")
    offline_cache: dict[int, bytes] = {}
    results = {}
    for shards in shard_counts:
        run = bench_shards(shards, size, repeats, offline_cache)
        results[shards] = run
        print(f"shards={shards}: {run['imgs_per_s']:6.2f} imgs/s  "
              f"p50 {run['p50_s']*1e3:6.1f} ms  p95 {run['p95_s']*1e3:6.1f} ms  "
              f"served by {len(run['shards_seen'])} shard(s)  "
              f"deterministic={run['deterministic']}")

    top = max(shard_counts)
    speedups = {
        str(n): results[n]["imgs_per_s"] / results[1]["imgs_per_s"]
        for n in shard_counts
    }
    print("speedup vs 1 shard: " + ", ".join(
        f"{n} shards {speedups[str(n)]:.2f}x" for n in shard_counts if n != 1
    ))

    cached = bench_cached(size)
    print(f"cached burst (2 shards, identical image): "
          f"{cached['imgs_per_s']:6.2f} imgs/s, "
          f"{cached['cluster_encodes']} cluster-wide encode(s), "
          f"{cached['remote_cache_hits']} bus hit(s)")

    deterministic = (
        all(r["deterministic"] for r in results.values())
        and cached["deterministic"]
    )
    machine_limited = cpu_count < top
    passed = (
        deterministic
        and cached["cluster_encodes"] == 1
        and speedups[str(top)] >= ACCEPT_SPEEDUP
    )
    print(f"byte-identical to offline encode everywhere: {deterministic}")
    if machine_limited:
        print(f"note: {cpu_count} cpu(s) < {top} shards — the "
              f">= {ACCEPT_SPEEDUP}x gate needs a multi-core machine")

    report = bench_report(
        "shard_scaling",
        machine_extra={"machine_limited": machine_limited},
        smoke=args.smoke,
        traffic={
            "requests": BURST,
            "unique_images": BURST,
            "image_size": size,
            "levels": LEVELS,
            "workers_per_shard": 1,
        },
        by_shard_count={str(n): results[n] for n in shard_counts},
        speedup_vs_1_shard=speedups,
        cached_2_shards=cached,
        deterministic=deterministic,
        acceptance={
            "threshold": ACCEPT_SPEEDUP,
            "speedup_at_max_shards": speedups[str(top)],
            "single_encode_cluster_wide": cached["cluster_encodes"] == 1,
            "passed": passed,
        },
    )
    write_bench_json(report, "BENCH_shards.json", args.output)

    if not deterministic or cached["cluster_encodes"] != 1:
        return 1  # correctness criteria fail loudly everywhere
    if args.gate and speedups[str(top)] < ACCEPT_SPEEDUP:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
