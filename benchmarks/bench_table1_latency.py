"""Table 1 — SPE instruction latencies and their consequence.

Regenerates the paper's Table 1 rows (mpyh/mpyu/a/fm latencies) and the
conclusion drawn from them: an emulated 32-bit integer multiply costs more
than a single-precision float multiply on the SPE, so Jasper's fixed-point
real path should be replaced with floats (Section 4).
"""

from repro.cell.isa import SPE_ISA, InstrClass, int32_multiply_mix
from repro.cell.spe import SPECore
from repro.kernels.dwt_kernels import dwt_mix

_TABLE1 = [
    (InstrClass.MPYH, "two byte integer multiply high", 7),
    (InstrClass.MPYU, "two byte integer multiply unsigned", 7),
    (InstrClass.ADD, "add word", 2),
    (InstrClass.FM, "single precision floating point multiply", 6),
]


def test_table1_rows(benchmark):
    def lookup_all():
        return {i: SPE_ISA.latency(i) for i, _, _ in _TABLE1}

    got = benchmark(lookup_all)
    print("\nTable 1: Latency for the SPE instructions")
    print(f"{'Instruction':<8} {'Description':<42} {'Latency':>8}")
    for instr, desc, paper in _TABLE1:
        print(f"{instr.value:<8} {desc:<42} {got[instr]:>6} cy   (paper: {paper})")
        assert got[instr] == paper


def test_emulated_multiply_vs_fm(benchmark):
    spe = SPECore()

    def emulation_latency():
        return sum(SPE_ISA.latency(i) * c for i, c in int32_multiply_mix().items())

    emul = benchmark(emulation_latency)
    fm = SPE_ISA.latency(InstrClass.FM)
    fixed = spe.seconds_per_element(dwt_mix(False, fixed_point=True))
    flt = spe.seconds_per_element(dwt_mix(False, fixed_point=False))
    print(f"\nemulated int32 multiply: {emul} cycles vs fm: {fm} cycles")
    print(f"9/7 DWT per sample-visit on SPE: fixed {fixed*1e9:.2f} ns, "
          f"float {flt*1e9:.2f} ns ({fixed/flt:.2f}x)")
    assert emul > fm
    assert fixed > flt
