"""Tier-1 hot-path benchmark: scalar vs. vectorized, serial vs. pooled.

Measures the two tentpole optimizations and records the numbers to
``BENCH_tier1.json`` so the performance trajectory is tracked across PRs:

* ``encode_codeblock`` on a dense 64x64 block, ``reference`` vs.
  ``vectorized`` backend (the paper's "EBCOT Tier-1 dominates" kernel);
* a many-small-blocks image (16x16 code blocks), per-block ``vectorized``
  vs. whole-image ``batched`` at one worker — the batched backend's
  target regime, where per-block NumPy overhead dominates;
* full-image encode at worker counts {1, 2, 4, 8} through the real
  multiprocessing work queue (the executable analogue of the paper's
  SPE scaling study, Figures 4/5).

Usage::

    PYTHONPATH=src python benchmarks/bench_tier1_hotpath.py           # full
    PYTHONPATH=src python benchmarks/bench_tier1_hotpath.py --smoke   # CI
    PYTHONPATH=src python benchmarks/bench_tier1_hotpath.py \
        --gate-batched    # quick CI gate: batched >= 1.5x on small blocks

``--smoke`` shrinks repetitions and the image so the whole thing runs in
well under a minute on a single-core CI runner.  Worker scaling is
machine-dependent: on a single-core container the pool *cannot* beat
serial (process start-up is pure overhead), so the JSON records
``cpu_count`` alongside every number — read speedups only against it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform

import numpy as np

from _util import add_repeats_flag, bench_report, check_repeats, time_fn, write_bench_json
from repro.image.synthetic import watch_face_image
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.params import EncoderParams
from repro.jpeg2000.tier1 import encode_codeblock

WORKER_COUNTS = (1, 2, 4, 8)

#: Acceptance floor for the batched backend on the many-small-blocks
#: image at one worker (``--gate-batched``).
BATCHED_MIN_SPEEDUP = 1.5


def bench_codeblock(repeats: int) -> dict:
    """Dense 64x64 block, both backends (issue acceptance: >= 5x)."""
    rng = np.random.default_rng(42)
    cb = rng.integers(-2000, 2000, size=(64, 64)).astype(np.int32)
    out = {}
    for backend in ("reference", "vectorized"):
        out[backend] = time_fn(
            lambda b=backend: encode_codeblock(cb, "HL", backend=b), repeats
        )
    ref, vec = out["reference"]["median_s"], out["vectorized"]["median_s"]
    out["speedup"] = ref / vec if vec > 0 else float("inf")
    return out


def bench_batched_small_blocks(size: int, repeats: int) -> dict:
    """Many 16x16 blocks: per-block vectorized vs. whole-image batched.

    This is the regime the batched backend exists for — hundreds of tiny
    blocks where the fixed NumPy overhead per pass per block dominates.
    Acceptance (ISSUE 6): batched >= 1.5x vectorized at one worker.
    """
    img = watch_face_image(size, size, channels=3)
    out = {"image": f"{size}x{size}x3", "codeblock_size": 16, "backends": {}}
    streams = {}
    for backend in ("vectorized", "batched"):
        params = EncoderParams(
            levels=3, codeblock_size=16, tier1_backend=backend, workers=1
        )
        out["backends"][backend] = time_fn(
            lambda p=params: encode(img, p), repeats
        )
        result = encode(img, params)
        streams[backend] = result.codestream
        if backend == "batched":
            out["batch_groups"] = result.stats.tier1_batch_groups
            out["batch_blocks"] = result.stats.tier1_batch_blocks
            out["batch_occupancy"] = result.stats.tier1_batch_occupancy
    vec = out["backends"]["vectorized"]["median_s"]
    bat = out["backends"]["batched"]["median_s"]
    out["speedup"] = vec / bat if bat > 0 else float("inf")
    out["codestreams_identical"] = streams["vectorized"] == streams["batched"]
    return out


def bench_full_image(size: int, repeats: int) -> dict:
    """Full lossless encode through the work queue at several widths."""
    img = watch_face_image(size, size, channels=3)
    out = {"image": f"{size}x{size}x3", "workers": {}}
    codestreams = {}
    for workers in WORKER_COUNTS:
        params = EncoderParams(levels=3, workers=workers)
        result = time_fn(lambda p=params: encode(img, p), repeats)
        codestreams[workers] = encode(img, params).codestream
        out["workers"][str(workers)] = result
    base = out["workers"]["1"]["median_s"]
    for workers in WORKER_COUNTS:
        w = out["workers"][str(workers)]
        w["speedup_vs_1"] = base / w["median_s"] if w["median_s"] > 0 else 0.0
    first = codestreams[WORKER_COUNTS[0]]
    out["codestreams_identical"] = all(
        codestreams[w] == first for w in WORKER_COUNTS
    )
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny image + few repeats (CI)")
    ap.add_argument("--gate-batched", action="store_true",
                    help="run only the many-small-blocks comparison and "
                         f"fail unless batched >= {BATCHED_MIN_SPEEDUP}x "
                         "vectorized at 1 worker (CI quick gate)")
    ap.add_argument("--output", default=None,
                    help="JSON path (default: BENCH_tier1.json at repo root)")
    add_repeats_flag(ap)
    args = ap.parse_args(argv)
    repeats = check_repeats(args.repeats)

    block_repeats = max(repeats, 3 if args.smoke else 9)
    image_size = 96 if args.smoke else 192
    image_repeats = repeats

    if args.gate_batched:
        sb = bench_batched_small_blocks(96, max(repeats, 3))
        print(f"{sb['image']} codeblock=16: "
              f"vectorized {sb['backends']['vectorized']['median_s']:.3f} s"
              f"  batched {sb['backends']['batched']['median_s']:.3f} s"
              f"  speedup {sb['speedup']:.2f}x"
              f"  (floor {BATCHED_MIN_SPEEDUP}x, "
              f"identical={sb['codestreams_identical']})")
        ok = sb["codestreams_identical"] and sb["speedup"] >= BATCHED_MIN_SPEEDUP
        print("gate-batched:", "PASS" if ok else "FAIL")
        return 0 if ok else 1

    from repro.jpeg2000 import _mq_native

    report = bench_report(
        "tier1_hotpath",
        machine_extra={
            "mq_native_kernel": _mq_native.native_encode_run is not None,
        },
        smoke=args.smoke,
        codeblock_64x64_dense=bench_codeblock(block_repeats),
        batched_small_blocks=bench_batched_small_blocks(
            image_size, image_repeats
        ),
        full_image_encode=bench_full_image(image_size, image_repeats),
    )

    cb = report["codeblock_64x64_dense"]
    sb = report["batched_small_blocks"]
    fi = report["full_image_encode"]
    print(f"dense 64x64 block : reference {cb['reference']['median_s']*1e3:8.1f} ms"
          f"  vectorized {cb['vectorized']['median_s']*1e3:8.1f} ms"
          f"  speedup {cb['speedup']:.1f}x")
    print(f"{sb['image']} codeblock=16 ({sb['batch_blocks']} blocks, "
          f"{sb['batch_groups']} groups): "
          f"vectorized {sb['backends']['vectorized']['median_s']:.3f} s"
          f"  batched {sb['backends']['batched']['median_s']:.3f} s"
          f"  speedup {sb['speedup']:.2f}x")
    for w in WORKER_COUNTS:
        r = fi["workers"][str(w)]
        print(f"{fi['image']} encode, {w} worker(s): {r['median_s']:8.2f} s"
              f"  ({r['speedup_vs_1']:.2f}x vs 1)")
    print(f"codestreams identical across worker counts: "
          f"{fi['codestreams_identical']}  (cpu_count={os.cpu_count()})")

    write_bench_json(report, "BENCH_tier1.json", args.output)

    if not fi["codestreams_identical"] or not sb["codestreams_identical"]:
        return 1  # determinism is an acceptance criterion, fail loudly
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
