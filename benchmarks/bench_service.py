"""Encode-service throughput benchmark: persistent pool vs. pool-per-image.

Replays a 16-request burst (with the repetition real serving traffic has)
three ways and records imgs/s plus p50/p95 latency to
``BENCH_service.json``:

* ``baseline``       — the status-quo CLI path: each request encodes with
                       ``EncoderParams(workers=W)``, spawning and tearing
                       down a fresh ``multiprocessing.Pool`` per image;
* ``service_nocache`` — the service's persistent pool + scheduler with the
                       result cache disabled (isolates pool reuse);
* ``service_cached``  — the full service; repeated images hit the
                       content-addressed cache.

Issue acceptance: ``service_cached`` throughput >= 1.5x ``baseline`` on
the 16-image burst, byte-identical output everywhere.  Worker scaling is
machine-dependent (a 1-core container cannot beat serial with more
workers), so ``cpu_count`` is recorded alongside every number.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py           # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import threading
import time

import numpy as np

from _util import add_repeats_flag, bench_report, check_repeats, write_bench_json
from repro.image.synthetic import watch_face_image
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.params import EncoderParams
from repro.service import EncodeService, ServiceConfig

#: Request pattern over unique-image indices: 16 requests, 6 unique images,
#: hot-skewed like real traffic (image 0 is requested 4 times).
TRAFFIC = (0, 1, 2, 0, 3, 1, 0, 4, 2, 5, 1, 0, 3, 2, 1, 4)
CONCURRENCY = 8
ACCEPT_SPEEDUP = 1.5


def _quantile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, round(q * (len(ordered) - 1)))]


def _summary(latencies: list[float], wall_s: float) -> dict:
    return {
        "requests": len(latencies),
        "wall_s": wall_s,
        "imgs_per_s": len(latencies) / wall_s if wall_s > 0 else 0.0,
        "p50_s": _quantile(latencies, 0.50),
        "p95_s": _quantile(latencies, 0.95),
        "mean_s": statistics.fmean(latencies),
    }


def median_run(fn, repeats: int) -> dict:
    """Run a whole burst ``repeats`` times; keep the median-throughput run.

    Determinism failures in *any* run poison the reported one, so a flaky
    repeat cannot hide behind a healthy median.
    """
    runs = [fn() for _ in range(repeats)]
    runs.sort(key=lambda r: r["imgs_per_s"])
    chosen = dict(runs[len(runs) // 2])
    chosen["repeats"] = repeats
    if any(not r.get("deterministic", True) for r in runs):
        chosen["deterministic"] = False
    return chosen


def make_images(smoke: bool) -> list[np.ndarray]:
    """Six unique images of varying size/channels (unique content)."""
    base = 40 if smoke else 64
    images = []
    for i in range(6):
        size = base + 8 * i
        channels = 3 if i % 2 else 1
        images.append(watch_face_image(size, size, channels=channels))
    return images


def bench_baseline(images, params_workers, offline) -> dict:
    """Pool-per-image: sequential one-shot encodes, no reuse, no cache."""
    latencies = []
    t0 = time.perf_counter()
    for idx in TRAFFIC:
        t = time.perf_counter()
        result = encode(images[idx], params_workers)
        latencies.append(time.perf_counter() - t)
        assert result.codestream == offline[idx], "baseline determinism"
    return _summary(latencies, time.perf_counter() - t0)


def bench_service(images, params, offline, workers, cache_bytes) -> dict:
    """The burst through one EncodeService, CONCURRENCY submitter threads."""
    config = ServiceConfig(
        workers=workers, cache_bytes=cache_bytes, max_queue=len(TRAFFIC),
    )
    latencies = [0.0] * len(TRAFFIC)
    mismatches = []
    with EncodeService(config) as service:
        order = list(enumerate(TRAFFIC))
        cursor = threading.Lock()

        def submitter():
            while True:
                with cursor:
                    if not order:
                        return
                    req, idx = order.pop(0)
                t = time.perf_counter()
                response = service.encode_image(images[idx], params)
                latencies[req] = time.perf_counter() - t
                if response.codestream != offline[idx]:
                    mismatches.append(req)

        t0 = time.perf_counter()
        threads = [threading.Thread(target=submitter)
                   for _ in range(CONCURRENCY)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        out = _summary(latencies, wall)
        out["concurrency"] = CONCURRENCY
        out["cache"] = service.cache.snapshot()
        metrics = service.metrics.snapshot()
        hits = metrics["cache_hits_total"]["value"]
        out["cache_hits"] = hits
        out["coalesced"] = metrics["coalesced_total"]["value"]
        # Request-level hit rate: duplicates coalesced onto an in-flight
        # encode also return cached bytes, which the raw cache counters
        # (first probe per request) cannot see.
        out["hit_rate"] = hits / len(TRAFFIC)
        out["peak_inflight_jobs"] = service.admission.snapshot()["peak_inflight"]
    out["deterministic"] = not mismatches
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="smaller images (CI single-core runners)")
    ap.add_argument("--workers", type=int, default=2,
                    help="pool worker processes for every configuration")
    ap.add_argument("--output", default=None,
                    help="JSON path (default: BENCH_service.json at repo root)")
    add_repeats_flag(ap)
    args = ap.parse_args(argv)
    repeats = check_repeats(args.repeats)

    images = make_images(args.smoke)
    params = EncoderParams(levels=3)
    params_workers = EncoderParams(levels=3, workers=args.workers)
    # Offline oracle (serial): what every configuration must emit.
    offline = [encode(img, params).codestream for img in images]

    print(f"burst: {len(TRAFFIC)} requests over {len(images)} unique images, "
          f"{args.workers} worker(s), concurrency {CONCURRENCY}")
    baseline = median_run(
        lambda: bench_baseline(images, params_workers, offline), repeats
    )
    print(f"baseline (pool per image) : {baseline['imgs_per_s']:6.2f} imgs/s  "
          f"p50 {baseline['p50_s']*1e3:6.1f} ms  p95 {baseline['p95_s']*1e3:6.1f} ms")
    nocache = median_run(
        lambda: bench_service(images, params, offline, args.workers, 0), repeats
    )
    print(f"service (no cache)        : {nocache['imgs_per_s']:6.2f} imgs/s  "
          f"p50 {nocache['p50_s']*1e3:6.1f} ms  p95 {nocache['p95_s']*1e3:6.1f} ms")
    cached = median_run(
        lambda: bench_service(images, params, offline, args.workers, 64 * 2**20),
        repeats,
    )
    print(f"service (64 MiB cache)    : {cached['imgs_per_s']:6.2f} imgs/s  "
          f"p50 {cached['p50_s']*1e3:6.1f} ms  p95 {cached['p95_s']*1e3:6.1f} ms  "
          f"hit rate {cached['hit_rate']:.2f}")

    speedup_nocache = nocache["imgs_per_s"] / baseline["imgs_per_s"]
    speedup_cached = cached["imgs_per_s"] / baseline["imgs_per_s"]
    deterministic = nocache["deterministic"] and cached["deterministic"]
    print(f"speedup vs baseline: no-cache {speedup_nocache:.2f}x, "
          f"cached {speedup_cached:.2f}x "
          f"(acceptance >= {ACCEPT_SPEEDUP}x cached)")
    print(f"byte-identical to offline encode everywhere: {deterministic}")

    report = bench_report(
        "service_throughput",
        smoke=args.smoke,
        traffic={
            "requests": len(TRAFFIC),
            "unique_images": len(images),
            "pattern": list(TRAFFIC),
            "image_shapes": [list(img.shape) for img in images],
            "concurrency": CONCURRENCY,
            "workers": args.workers,
        },
        baseline_pool_per_image=baseline,
        service_nocache=nocache,
        service_cached=cached,
        speedup_vs_baseline={
            "nocache": speedup_nocache,
            "cached": speedup_cached,
        },
        deterministic=deterministic,
        acceptance={
            "threshold": ACCEPT_SPEEDUP,
            "passed": deterministic and speedup_cached >= ACCEPT_SPEEDUP,
        },
    )
    write_bench_json(report, "BENCH_service.json", args.output)

    if not deterministic:
        return 1  # determinism is an acceptance criterion, fail loudly
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
