"""Ablation A2 — lifting-step interleaving and split merging (Section 4).

The paper's DWT optimization sequence: naive (3 or 6 full DMA passes of the
column group per level) -> interleaved lifting (Algorithm 2) -> merged
split with auxiliary buffer (1.5 passes).  Regenerates the DMA-traffic
reduction and the simulated stage times for both modes.
"""

from repro.cell.machine import SINGLE_CELL
from repro.core.pipeline import PipelineModel, PipelineOptions
from repro.kernels.dwt_kernels import DwtVariant, vertical_dma_passes


def test_ablation_dma_pass_counts(benchmark):
    rows = benchmark(
        lambda: {
            (v, ll): vertical_dma_passes(v, ll)
            for v in DwtVariant for ll in (True, False)
        }
    )
    print("\nAblation A2 — vertical filtering DMA passes per level")
    print(f"{'variant':<14} {'lossless':>9} {'lossy':>7}")
    for v in DwtVariant:
        print(f"{v.value:<14} {rows[(v, True)]:>9.1f} {rows[(v, False)]:>7.1f}")
    assert rows[(DwtVariant.NAIVE, True)] == 3.0
    assert rows[(DwtVariant.NAIVE, False)] == 6.0
    assert rows[(DwtVariant.MERGED, True)] == 1.5
    assert rows[(DwtVariant.MERGED, False)] == 1.5


def test_ablation_dwt_times(benchmark, workload_lossless, workload_lossy):
    def times():
        out = {}
        for tag, stats in (("lossless", workload_lossless),
                           ("lossy", workload_lossy)):
            for v in DwtVariant:
                tl = PipelineModel(SINGLE_CELL, stats,
                                   PipelineOptions(dwt_variant=v)).simulate()
                out[(tag, v)] = tl.stage("dwt").wall_s
        return out

    t = benchmark(times)
    print("\nAblation A2 — DWT stage time by variant (8 SPEs, 28.3 MB image)")
    print(f"{'variant':<14} {'lossless (ms)':>14} {'lossy (ms)':>11}")
    for v in DwtVariant:
        print(f"{v.value:<14} {t[('lossless', v)] * 1e3:>14.2f} "
              f"{t[('lossy', v)] * 1e3:>11.2f}")
    for tag in ("lossless", "lossy"):
        assert t[(tag, DwtVariant.MERGED)] <= t[(tag, DwtVariant.INTERLEAVED)]
        assert t[(tag, DwtVariant.INTERLEAVED)] < t[(tag, DwtVariant.NAIVE)]
    # the lossy mode gains more: 6 -> 1.5 passes vs 3 -> 1.5
    gain_ll = t[("lossless", DwtVariant.NAIVE)] / t[("lossless", DwtVariant.MERGED)]
    gain_lossy = t[("lossy", DwtVariant.NAIVE)] / t[("lossy", DwtVariant.MERGED)]
    print(f"merge gain: lossless {gain_ll:.2f}x, lossy {gain_lossy:.2f}x")
    assert gain_lossy > gain_ll
