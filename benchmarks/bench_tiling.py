"""Tiled encode: streaming memory ceiling and tile-parallel speedup.

Two claims ride on the tiling tentpole, and this benchmark measures both:

1. **Peak RSS under a budget.**  A tall image encoded with ``--tile`` and
   a ``mem_budget`` streams one batch of tiles at a time, so its peak
   working set must sit well below the single-tile encoder's (which holds
   every subband of the whole image at once).  Each configuration runs in
   its own child process because ``ru_maxrss`` is a per-process high-water
   mark — it only ever goes up, so sequential in-process measurements
   would inherit the largest predecessor.

2. **Tile-parallel speedup.**  Tiles shard across the code-block work
   queue, so a multi-tile encode at N workers must beat the same encode
   at 1 worker (bytes are identical at any worker count; the differential
   suite asserts that separately).

``--quick --gate`` is the CI contract: the tiled encode of the tall
synthetic image must stay under the memory budget (baseline-adjusted) and
decode to exactly the single-tile pixels.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from _util import (  # noqa: E402
    add_repeats_flag,
    bench_report,
    check_repeats,
    time_fn,
    write_bench_json,
)

#: RSS the tiled child may sit above the no-encode baseline: the budget
#: itself plus slack for the raw image, codestream, and allocator overhead.
GATE_SLACK = 3.0


def _mem_budget(tile: int, channels: int) -> int:
    """Streaming budget for a configuration: one tile's working set.

    The encoder can never hold less than one tile in flight, so a fixed
    byte budget would be unsatisfiable for large tiles (a 1024-px RGB
    tile alone needs ~384 MiB of coder state).  Deriving the budget
    from ``TILE_WORKSET_BYTES`` gates the thing streaming actually
    promises: peak memory proportional to one tile batch, not to the
    image.
    """
    from repro.jpeg2000.params import TILE_WORKSET_BYTES

    return tile * tile * channels * TILE_WORKSET_BYTES


def _make_image(height: int, width: int, channels: int):
    """A tall deterministic image built by tiling a small watch face.

    ``watch_face_image`` at full size transiently allocates ~100 bytes
    per sample of float64 intermediates — more than the encode under
    measurement — so the RSS children would inherit a generation peak
    that masks the encoder's.  Tiling a 256-pixel base keeps generation
    cost O(base), not O(image).
    """
    import numpy as np

    from repro.image.synthetic import watch_face_image

    base = watch_face_image(min(256, height), min(256, width),
                            channels=channels)
    reps = (-(-height // base.shape[0]), -(-width // base.shape[1]))
    if channels > 1:
        reps += (1,)
    return np.tile(base, reps)[:height, :width]


def _child_main(spec: dict) -> None:
    """Encode once in a fresh process; report peak RSS and wall time."""
    import resource
    import time

    from repro.jpeg2000.encoder import encode
    from repro.jpeg2000.params import EncoderParams

    img = _make_image(*spec["shape"])
    out: dict = {}
    if spec["encode"]:
        params = EncoderParams(
            tile_size=spec.get("tile"),
            mem_budget=spec.get("mem_budget"),
            workers=spec.get("workers", 1),
        )
        t0 = time.perf_counter()
        result = encode(img, params)
        out["wall_s"] = time.perf_counter() - t0
        out["bytes"] = len(result.codestream)
        with open(spec["codestream_path"], "wb") as fh:
            fh.write(result.codestream)
    # Linux ru_maxrss is KiB.
    out["peak_rss_bytes"] = (
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    )
    json.dump(out, sys.stdout)


def _run_child(spec: dict) -> dict:
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--child",
         json.dumps(spec)],
        capture_output=True, text=True, check=True,
        env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
    )
    return json.loads(proc.stdout)


def _rss_section(shape, tile: int, workdir: str, mem_budget: int) -> dict:
    """Peak-RSS comparison: baseline (no encode) vs untiled vs tiled."""
    base = _run_child({"shape": shape, "encode": False})
    untiled_path = os.path.join(workdir, "untiled.j2c")
    tiled_path = os.path.join(workdir, "tiled.j2c")
    untiled = _run_child({
        "shape": shape, "encode": True, "codestream_path": untiled_path,
    })
    tiled = _run_child({
        "shape": shape, "encode": True, "tile": tile,
        "mem_budget": mem_budget, "codestream_path": tiled_path,
    })
    return {
        "shape": list(shape),
        "tile": tile,
        "mem_budget_bytes": mem_budget,
        "baseline_rss_bytes": base["peak_rss_bytes"],
        "untiled": untiled,
        "tiled": tiled,
        "rss_ratio": tiled["peak_rss_bytes"] / untiled["peak_rss_bytes"],
        "untiled_path": untiled_path,
        "tiled_path": tiled_path,
    }


def _speedup_section(shape, tile: int, repeats: int) -> dict:
    """Tile-parallel wall time: 1 worker vs all cores (same bytes)."""
    from repro.jpeg2000.encoder import encode
    from repro.jpeg2000.params import EncoderParams

    img = _make_image(*shape)
    workers = min(4, os.cpu_count() or 1)
    serial = time_fn(
        lambda: encode(img, EncoderParams(tile_size=tile, workers=1)),
        repeats,
    )
    parallel = time_fn(
        lambda: encode(img, EncoderParams(tile_size=tile, workers=workers)),
        repeats,
    )
    return {
        "shape": list(shape),
        "tile": tile,
        "workers": workers,
        "serial": serial,
        "parallel": parallel,
        "speedup": serial["median_s"] / parallel["median_s"],
    }


def _verify_pixels(rss: dict, shape) -> None:
    import numpy as np

    from repro.jpeg2000.decoder import decode

    img = _make_image(*shape)
    with open(rss["untiled_path"], "rb") as fh:
        untiled = decode(fh.read())
    with open(rss["tiled_path"], "rb") as fh:
        tiled = decode(fh.read())
    if not np.array_equal(untiled, img):
        raise SystemExit("GATE FAIL: untiled decode does not match source")
    if not np.array_equal(tiled, img):
        raise SystemExit(
            "GATE FAIL: tiled decode does not match single-tile pixels"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--child", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--quick", action="store_true",
                        help="small shapes (the CI configuration)")
    parser.add_argument("--gate", action="store_true",
                        help="fail unless tiled RSS is under budget and "
                             "under the untiled peak, with matching pixels")
    parser.add_argument("--output", default=None, metavar="PATH")
    add_repeats_flag(parser, default=1)
    args = parser.parse_args(argv)
    if args.child:
        _child_main(json.loads(args.child))
        return 0
    check_repeats(args.repeats)

    if args.quick:
        rss_shape = (4096, 256, 1)   # tall: 16 one-row tile batches
        speed_shape = (512, 512, 1)
        tile = 256
    else:
        rss_shape = (4096, 4096, 3)  # the acceptance-scale image
        speed_shape = (1024, 1024, 3)
        tile = 1024

    import tempfile

    mem_budget = _mem_budget(tile, rss_shape[2])

    with tempfile.TemporaryDirectory(prefix="bench_tiling_") as workdir:
        rss = _rss_section(rss_shape, tile, workdir, mem_budget)
        _verify_pixels(rss, rss_shape)
        speedup = _speedup_section(speed_shape, tile=128,
                                   repeats=args.repeats)
        rss.pop("untiled_path"), rss.pop("tiled_path")

    gate = {
        "rss_below_untiled": rss["tiled"]["peak_rss_bytes"]
        < rss["untiled"]["peak_rss_bytes"],
        "rss_under_budget": (
            rss["tiled"]["peak_rss_bytes"] - rss["baseline_rss_bytes"]
            <= GATE_SLACK * mem_budget
        ),
        "pixels_match": True,  # _verify_pixels raised otherwise
    }
    report = bench_report(
        "tiling", rss=rss, speedup=speedup, gate=gate,
    )
    write_bench_json(report, "BENCH_tiling.json", args.output)

    untiled_mb = rss["untiled"]["peak_rss_bytes"] / 2**20
    tiled_mb = rss["tiled"]["peak_rss_bytes"] / 2**20
    base_mb = rss["baseline_rss_bytes"] / 2**20
    print(f"peak RSS: baseline {base_mb:.0f} MiB, untiled {untiled_mb:.0f} "
          f"MiB, tiled {tiled_mb:.0f} MiB (ratio {rss['rss_ratio']:.2f})")
    print(f"tile-parallel speedup: {speedup['speedup']:.2f}x at "
          f"{speedup['workers']} workers")

    if args.gate:
        if not gate["rss_below_untiled"]:
            raise SystemExit(
                f"GATE FAIL: tiled peak RSS {tiled_mb:.0f} MiB not below "
                f"untiled {untiled_mb:.0f} MiB"
            )
        if not gate["rss_under_budget"]:
            over = rss["tiled"]["peak_rss_bytes"] - rss["baseline_rss_bytes"]
            raise SystemExit(
                f"GATE FAIL: tiled encode working set {over / 2**20:.0f} "
                f"MiB exceeds {GATE_SLACK:.0f}x the "
                f"{mem_budget / 2**20:.0f} MiB budget"
            )
        print("gate OK: tiled encode stayed under budget with exact pixels")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
