"""Microbenchmarks of the functional codec kernels themselves.

These time the *Python/NumPy implementation* (not the Cell model) so
regressions in the functional substrate are caught: DWT throughput, MQ
coder symbol rate, Tier-1 block coding rate, and full encode/decode.
"""

import numpy as np

from repro.image.synthetic import watch_face_image
from repro.jpeg2000.decoder import decode
from repro.jpeg2000.dwt import forward_dwt2d, inverse_dwt2d
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.mq import MQDecoder, MQEncoder
from repro.jpeg2000.params import EncoderParams
from repro.jpeg2000.tier1 import encode_codeblock


def test_bench_dwt53_forward(benchmark):
    img = watch_face_image(512, 512, 1).astype(np.int32)
    d = benchmark(lambda: forward_dwt2d(img, 5, reversible=True))
    assert d.levels == 5


def test_bench_dwt97_roundtrip(benchmark):
    img = watch_face_image(256, 256, 1).astype(np.float64)

    def run():
        return inverse_dwt2d(forward_dwt2d(img, 5, reversible=False))

    out = benchmark(run)
    assert np.allclose(out, img, atol=1e-6)


def test_bench_mq_encoder(benchmark):
    rng = np.random.default_rng(0)
    bits = rng.integers(0, 2, 20000).tolist()
    cxs = rng.integers(0, 19, 20000).tolist()

    def run():
        enc = MQEncoder(19)
        for b, c in zip(bits, cxs):
            enc.encode(b, c)
        return enc.flush()

    data = benchmark(run)
    dec = MQDecoder(data, 19)
    assert [dec.decode(c) for c in cxs[:100]] == bits[:100]


def test_bench_tier1_codeblock(benchmark):
    rng = np.random.default_rng(1)
    cb = rng.integers(-300, 300, size=(64, 64)).astype(np.int32)
    res = benchmark(lambda: encode_codeblock(cb, "HL"))
    assert res.num_passes > 0


def test_bench_full_encode_lossless(benchmark):
    img = watch_face_image(64, 64, 1)
    res = benchmark(lambda: encode(img, EncoderParams(lossless=True, levels=3)))
    assert len(res.codestream) > 0


def test_bench_full_decode(benchmark):
    img = watch_face_image(64, 64, 1)
    cs = encode(img, EncoderParams(lossless=True, levels=3)).codestream
    out = benchmark(lambda: decode(cs))
    assert np.array_equal(out, img)
