"""Figure 8 — DWT performance vs Muta et al.

Our lifting DWT with the aligned data decomposition and merged-loop DMA
schedule vs their convolution DWT over overlapped 128x128 tiles on a single
SPE.  Paper shape target: large win, and our DWT keeps scaling with SPEs
("their DWT implementation does not scale beyond a single SPE").
"""

from repro.baselines.muta import MutaConfig, MutaPipelineModel
from repro.cell.machine import CellMachine
from repro.core.pipeline import PipelineModel


def _ours_dwt(stats, spes: int, chips: int = 1) -> float:
    machine = CellMachine(chips=chips, num_spes=spes, num_ppe_threads=chips)
    return PipelineModel(machine, stats).simulate().stage("dwt").wall_s


def test_fig8_dwt_comparison(benchmark, workload_frame):
    stats = workload_frame

    def bars():
        return {
            "Muta0": MutaPipelineModel(stats, MutaConfig.MUTA0).dwt_reported_time(),
            "Muta1": MutaPipelineModel(stats, MutaConfig.MUTA1).dwt_reported_time(),
            "Ours (1 Cell/B.E.)": _ours_dwt(stats, 8),
            "Ours (2 Cell/B.E.)": _ours_dwt(stats, 16, chips=2),
        }

    t = benchmark(bars)
    muta0 = t["Muta0"]
    print("\nFigure 8 — DWT performance")
    print(f"{'configuration':<22} {'time (ms)':>10} {'speedup vs Muta0':>18}")
    for name, v in t.items():
        print(f"{name:<22} {v * 1e3:>10.2f} {muta0 / v:>18.2f}")
    assert t["Ours (1 Cell/B.E.)"] < 0.5 * muta0   # clear win
    assert t["Ours (2 Cell/B.E.)"] < t["Ours (1 Cell/B.E.)"]


def test_fig8_our_dwt_scales_with_spes(benchmark, workload_frame):
    stats = workload_frame
    times = benchmark(lambda: {n: _ours_dwt(stats, n) for n in (1, 2, 4, 8)})
    print("\nour DWT scaling:", {n: f"{v*1e3:.2f} ms" for n, v in times.items()})
    assert times[4] < times[2] < times[1]
    # by 8 SPEs the off-chip bandwidth is the wall (Section 4): no regression,
    # but near-saturation is the expected physics
    assert times[8] <= times[4] * 1.1
    assert times[1] / times[8] > 2.5  # scales well beyond one SPE
