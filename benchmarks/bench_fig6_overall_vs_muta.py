"""Figure 6 — overall encoding performance vs Muta et al. (ACM-MM 2007).

Regenerates the figure's four bars for an HD-frame lossless encode: our
implementation on one and two Cell/B.E. chips vs the reported Muta0 (two
encoder threads on two chips, throughput mode) and Muta1 (one thread on two
chips) numbers.

Paper shape target: "Our implementation with one Cell/B.E. processor and
two Cell/B.E. processors demonstrates superior overall performance than the
previous implementations with the two Cell/B.E. processors."
"""

from repro.baselines.muta import MutaConfig, MutaPipelineModel
from repro.cell.machine import CellMachine
from repro.core.pipeline import PipelineModel


def _ours(stats, chips: int) -> float:
    machine = CellMachine(chips=chips, num_spes=8 * chips, num_ppe_threads=chips)
    return PipelineModel(machine, stats).simulate().total_s


def test_fig6_overall_comparison(benchmark, workload_frame):
    stats = workload_frame

    def bars():
        return {
            "Muta0": MutaPipelineModel(stats, MutaConfig.MUTA0).reported_frame_time(),
            "Muta1": MutaPipelineModel(stats, MutaConfig.MUTA1).reported_frame_time(),
            "Ours (1 Cell/B.E.)": _ours(stats, 1),
            "Ours (2 Cell/B.E.)": _ours(stats, 2),
        }

    t = benchmark(bars)
    muta0 = t["Muta0"]
    print("\nFigure 6 — overall encoding performance (HD frame, lossless)")
    print(f"{'configuration':<22} {'time (ms)':>10} {'speedup vs Muta0':>18}")
    for name, v in t.items():
        print(f"{name:<22} {v * 1e3:>10.1f} {muta0 / v:>18.2f}")
    assert t["Ours (1 Cell/B.E.)"] < muta0
    assert t["Ours (2 Cell/B.E.)"] < t["Ours (1 Cell/B.E.)"]
    assert t["Muta1"] > muta0  # their one-thread mode is slower than Muta0
