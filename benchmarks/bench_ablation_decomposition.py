"""Ablation A1 — the data decomposition scheme (Section 2).

Compares the paper's cache-line-aligned constant-width chunking against a
naive equal-width split on a ragged-width image: DMA bus efficiency,
alignment fraction, and the resulting stage times.
"""

import dataclasses

from repro.cell.machine import SINGLE_CELL
from repro.core.decomposition import (
    dma_row_alignment_report,
    plan_decomposition,
    plan_naive_decomposition,
)
from repro.core.pipeline import PipelineModel, PipelineOptions


def test_ablation_dma_efficiency(benchmark):
    # a ragged width (not a multiple of 32 int32 elements per cache line)
    height, width = 512, 1003

    def reports():
        return (
            dma_row_alignment_report(plan_decomposition(height, width, 4, 8)),
            dma_row_alignment_report(plan_naive_decomposition(height, width, 4, 8)),
        )

    aligned, naive = benchmark(reports)
    print("\nAblation A1 — DMA transfer quality (512x1003 int32 array, 8 SPEs)")
    print(f"{'scheme':<10} {'aligned rows':>13} {'bus efficiency':>15}")
    print(f"{'paper':<10} {aligned['aligned_fraction']:>12.0%} "
          f"{aligned['bus_efficiency']:>15.3f}")
    print(f"{'naive':<10} {naive['aligned_fraction']:>12.0%} "
          f"{naive['bus_efficiency']:>15.3f}")
    assert aligned["aligned_fraction"] == 1.0
    assert aligned["bus_efficiency"] == 1.0
    assert naive["bus_efficiency"] < 0.95


def test_ablation_stage_times(benchmark, workload_lossless):
    # make the image width ragged so the naive layout actually misaligns
    stats = dataclasses.replace(workload_lossless, width=workload_lossless.width + 37)

    def times():
        out = {}
        for aligned in (True, False):
            opts = PipelineOptions(aligned_decomposition=aligned)
            tl = PipelineModel(SINGLE_CELL, stats, opts).simulate()
            out[aligned] = (tl.stage("dwt").wall_s,
                            tl.stage("levelshift+mct").wall_s)
        return out

    t = benchmark(times)
    print("\nAblation A1 — stage wall times, aligned vs naive chunking")
    print(f"{'scheme':<10} {'dwt (ms)':>10} {'levelshift+mct (ms)':>20}")
    for aligned, (dwt, mct) in t.items():
        tag = "paper" if aligned else "naive"
        print(f"{tag:<10} {dwt * 1e3:>10.2f} {mct * 1e3:>20.2f}")
    assert t[False][0] > t[True][0]
    assert t[False][1] > t[True][1]
