"""Rate-control and Tier-1 dispatch benchmark (PR 4 tentpole).

Two measurements, recorded to ``BENCH_rate.json``:

* **Rate control** — vectorized PCRD-opt (:func:`choose_truncations`, flat
  NumPy hulls + global lambda bisection) against the seed scalar
  implementation (:func:`choose_truncations_reference`) on synthetic R-D
  curves laid out with the exact code-block geometry of a 2048x2048x3
  lossy encode (5 levels, 64x64 blocks).  Both paths must pick identical
  truncations before their timings count.
* **Dispatch overhead** — the work queue's shared-memory plane dispatch
  (planes published once, workers slice locally) against the pickled-block
  path, at 1-8 workers, over near-empty blocks so per-block transport cost
  is visible next to Tier-1 compute.  Results must be identical.

Usage::

    PYTHONPATH=src python benchmarks/bench_rate_tier2.py           # full
    PYTHONPATH=src python benchmarks/bench_rate_tier2.py --quick   # CI

``--quick`` keeps the full-geometry rate-control gate (exit 1 unless the
vectorized path is at least 2x the reference) and shrinks the dispatch
sweep to workers=2.  Worker scaling is machine-dependent, so the JSON
records ``cpu_count`` alongside every number.
"""

from __future__ import annotations

import argparse
import json
import os
import platform

import numpy as np

from _util import add_repeats_flag, bench_report, check_repeats, time_fn, write_bench_json
from repro.core.workpool import (
    CodeBlockWorkQueue,
    PlaneBlockTask,
    shared_memory_available,
)
from repro.jpeg2000.codeblocks import partition_subband
from repro.jpeg2000.rate import (
    BlockRateInfo,
    choose_truncations,
    choose_truncations_reference,
)

QUICK_SPEEDUP_FLOOR = 2.0
DISPATCH_WORKERS = (1, 2, 4, 8)


def block_geometry(size: int, channels: int, levels: int, cb: int) -> list[int]:
    """Per-block coefficient counts of a ``size x size x channels`` encode."""
    blocks = []
    h = w = size
    for _ in range(levels):
        nd_h, ns_h = h // 2, h - h // 2
        nd_w, ns_w = w // 2, w - w // 2
        for bh, bw in ((ns_h, nd_w), (nd_h, ns_w), (nd_h, nd_w)):  # HL LH HH
            specs, _, _ = partition_subband(bh, bw, cb)
            blocks.extend(s.height * s.width for s in specs)
        h, w = ns_h, ns_w
    specs, _, _ = partition_subband(h, w, cb)  # LL
    blocks.extend(s.height * s.width for s in specs)
    return blocks * channels


def synthetic_curves(
    sizes: list[int], seed: int = 7
) -> tuple[list[list[float]], list[list[float]]]:
    """Plausible per-pass (cumulative length, distortion gain) curves.

    Pass counts follow EBCOT's ``3 * bitplanes - 2``; byte increments grow
    toward the low bit planes while distortion gains decay, so hulls have
    realistic shapes (some passes off-hull, some zero-gain).
    """
    rng = np.random.default_rng(seed)
    lengths_list, dists_list = [], []
    for n in sizes:
        bitplanes = int(rng.integers(6, 13))
        npasses = 3 * bitplanes - 2
        grow = np.linspace(0.5, 4.0, npasses)
        incs = rng.integers(1, 60, size=npasses) * grow
        lengths = np.cumsum(np.maximum(1, incs.astype(np.int64)))
        decay = np.exp(-np.linspace(0.0, 6.0, npasses))
        dists = rng.uniform(0.2, 1.0, size=npasses) * decay * n
        dists[rng.uniform(size=npasses) < 0.05] = 0.0  # dead passes
        lengths_list.append([float(x) for x in lengths])
        dists_list.append([float(d) for d in dists])
    return lengths_list, dists_list


def bench_rate(repeats: int) -> dict:
    """Vectorized vs scalar truncation selection, 2048x2048x3 geometry."""
    sizes = block_geometry(2048, 3, levels=5, cb=64)
    lengths_list, dists_list = synthetic_curves(sizes)
    total = sum(ln[-1] for ln in lengths_list)
    budget = 0.15 * total

    def infos():
        return [
            BlockRateInfo(ln, dd)
            for ln, dd in zip(lengths_list, dists_list)
        ]

    # Hulls are cached per BlockRateInfo, so each timed call builds fresh
    # objects — both paths pay hull construction every time, as the
    # encoder's rate-control stage does.
    ref_out = choose_truncations_reference(infos(), budget)
    vec_out = choose_truncations(infos(), budget)
    identical = ref_out == vec_out
    out = {
        "geometry": "2048x2048x3, 5 levels, 64x64 blocks",
        "blocks": len(sizes),
        "budget_bytes": budget,
        "truncations_identical": identical,
        "reference": time_fn(
            lambda: choose_truncations_reference(infos(), budget), repeats
        ),
        "vectorized": time_fn(
            lambda: choose_truncations(infos(), budget), repeats
        ),
    }
    ref = out["reference"]["median_s"]
    vec = out["vectorized"]["median_s"]
    out["speedup"] = ref / vec if vec > 0 else float("inf")
    return out


def make_planes(plane_size: int, nplanes: int, seed: int = 11) -> list:
    """Transport-bound planes: all-zero except one dense 64x64 block each.

    Zero blocks Tier-1 in microseconds, so the aggregate time is dominated
    by how block data *reaches* the workers — the quantity this section
    measures.  One dense block per plane keeps the work non-trivial.
    """
    rng = np.random.default_rng(seed)
    planes = []
    for _ in range(nplanes):
        p = np.zeros((plane_size, plane_size), dtype=np.int32)
        r0 = int(rng.integers(0, plane_size // 64)) * 64
        c0 = int(rng.integers(0, plane_size // 64)) * 64
        p[r0 : r0 + 64, c0 : c0 + 64] = rng.integers(
            -2000, 2000, size=(64, 64)
        )
        planes.append(p)
    return planes


def bench_dispatch(workers_list, plane_size: int, repeats: int) -> dict:
    """Shared-memory plane dispatch vs pickled blocks, same Tier-1 work."""
    cb = 64
    planes = make_planes(plane_size, nplanes=3)
    tasks = []
    for pi, plane in enumerate(planes):
        specs, _, _ = partition_subband(plane.shape[0], plane.shape[1], cb)
        for s in specs:
            tasks.append(PlaneBlockTask(
                seq=len(tasks), plane=pi, row0=s.row0, col0=s.col0,
                height=s.height, width=s.width, band="HL",
            ))
    out = {
        "planes": len(planes),
        "plane_shape": [plane_size, plane_size],
        "blocks": len(tasks),
        "plane_bytes_total": int(sum(p.nbytes for p in planes)),
        "shared_memory_available": shared_memory_available(),
        "workers": {},
    }

    def run(workers: int, shm: bool):
        queue = CodeBlockWorkQueue(workers=workers, use_shared_memory=shm)
        res = queue.encode_plane_blocks(planes, tasks)
        return res, queue.last_stats.dispatch

    for workers in workers_list:
        base, base_mode = run(workers, False)
        shm, shm_mode = run(workers, True)
        identical = all(
            a.data == b.data and a.pass_lengths == b.pass_lengths
            for a, b in zip(base, shm)
        )
        row = {
            "pickle": time_fn(lambda w=workers: run(w, False), repeats),
            "shared_memory": time_fn(lambda w=workers: run(w, True), repeats),
            "pickle_mode": base_mode,
            "shared_memory_mode": shm_mode,
            "results_identical": identical,
        }
        pk = row["pickle"]["median_s"]
        sm = row["shared_memory"]["median_s"]
        row["shm_vs_pickle"] = pk / sm if sm > 0 else float("inf")
        row["pickle_per_block_ms"] = pk / len(tasks) * 1e3
        row["shm_per_block_ms"] = sm / len(tasks) * 1e3
        out["workers"][str(workers)] = row
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="rate gate + workers=2 dispatch only (CI)")
    ap.add_argument("--output", default=None,
                    help="JSON path (default: BENCH_rate.json at repo root)")
    add_repeats_flag(ap)
    args = ap.parse_args(argv)
    repeats = check_repeats(args.repeats)

    report = bench_report(
        "rate_tier2", quick=args.quick, rate_control=bench_rate(repeats)
    )
    rc = report["rate_control"]
    print(f"rate control ({rc['blocks']} blocks, {rc['geometry']}):"
          f" reference {rc['reference']['median_s']*1e3:8.1f} ms"
          f"  vectorized {rc['vectorized']['median_s']*1e3:8.1f} ms"
          f"  speedup {rc['speedup']:.1f}x"
          f"  identical: {rc['truncations_identical']}")

    workers_list = (2,) if args.quick else DISPATCH_WORKERS
    plane_size = 512 if args.quick else 2048
    report["dispatch"] = bench_dispatch(workers_list, plane_size, repeats)
    ok = rc["truncations_identical"]
    for w, row in report["dispatch"]["workers"].items():
        ok &= row["results_identical"]
        print(f"dispatch {report['dispatch']['blocks']} blocks, {w} worker(s):"
              f" pickle {row['pickle']['median_s']*1e3:8.1f} ms"
              f"  shm {row['shared_memory']['median_s']*1e3:8.1f} ms"
              f"  ({row['shm_vs_pickle']:.2f}x, modes "
              f"{row['pickle_mode']}/{row['shared_memory_mode']})"
              f"  identical: {row['results_identical']}")
    print(f"cpu_count={os.cpu_count()}")

    write_bench_json(report, "BENCH_rate.json", args.output)

    if not ok:
        print("FAIL: vectorized/shared-memory results differ from reference")
        return 1
    if args.quick:
        if rc["speedup"] < QUICK_SPEEDUP_FLOOR:
            print(f"FAIL: rate-control speedup {rc['speedup']:.2f}x "
                  f"< {QUICK_SPEEDUP_FLOOR}x floor")
            return 1
        print(f"quick gate passed: vectorized >= {QUICK_SPEEDUP_FLOOR}x reference")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
