"""Shared benchmark harness helpers.

Every ``bench_*.py`` script times with :func:`time_fn` (median of >= 3
repeats after a warm-up, so one scheduler hiccup cannot skew a recorded
number) and exposes the repeat count via :func:`add_repeats_flag` so CI
and local runs can trade accuracy for wall time explicitly.
"""

from __future__ import annotations

import argparse
import statistics
import time

#: Benchmarks must default to at least this many timed repeats.
DEFAULT_REPEATS = 3


def add_repeats_flag(
    parser: argparse.ArgumentParser, default: int = DEFAULT_REPEATS
) -> None:
    """Add the shared ``--repeats`` option (defaults to median-of-3)."""
    parser.add_argument(
        "--repeats", type=int, default=default, metavar="N",
        help=f"timed repeats per case, median reported (default {default})",
    )


def check_repeats(repeats: int) -> int:
    if repeats < 1:
        raise SystemExit(f"--repeats must be >= 1, got {repeats}")
    return repeats


def time_fn(fn, repeats: int, warmup: int = 1) -> dict:
    """Median-of-``repeats`` wall time of ``fn()`` after ``warmup`` calls."""
    check_repeats(repeats)
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {
        "median_s": statistics.median(samples),
        "min_s": min(samples),
        "repeats": repeats,
    }
