"""Shared benchmark harness helpers.

Every ``bench_*.py`` script times with :func:`time_fn` (median of >= 3
repeats after a warm-up, so one scheduler hiccup cannot skew a recorded
number) and exposes the repeat count via :func:`add_repeats_flag` so CI
and local runs can trade accuracy for wall time explicitly.

Every committed ``BENCH_*.json`` shares one envelope, built by
:func:`bench_report` and written by :func:`write_bench_json`:

    {"schema_version": 2, "benchmark": "<name>",
     "machine": {"cpu_count", "platform", "python", "numpy",
                 "repro_config": {...}, ...extras},
     ...benchmark-specific sections}

``repro_config`` records the execution-strategy knobs in effect when the
numbers were taken — every ``REPRO_*`` env override plus the planner's
model-derived serial cutovers — so a committed report is reproducible
without guessing which backend or worker clamp was active.

so downstream tooling can diff machines and results across benchmarks
without per-file parsers.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import time

#: Version of the shared BENCH_*.json envelope (machine block + top-level
#: keys); bump when the shape of the shared fields changes.
#: v2: machine block gained ``repro_config`` (REPRO_* overrides + planner
#: cutovers).
SCHEMA_VERSION = 2

#: Benchmarks must default to at least this many timed repeats.
DEFAULT_REPEATS = 3


def add_repeats_flag(
    parser: argparse.ArgumentParser, default: int = DEFAULT_REPEATS
) -> None:
    """Add the shared ``--repeats`` option (defaults to median-of-3)."""
    parser.add_argument(
        "--repeats", type=int, default=default, metavar="N",
        help=f"timed repeats per case, median reported (default {default})",
    )


def check_repeats(repeats: int) -> int:
    if repeats < 1:
        raise SystemExit(f"--repeats must be >= 1, got {repeats}")
    return repeats


def time_fn(fn, repeats: int, warmup: int = 1) -> dict:
    """Median-of-``repeats`` wall time of ``fn()`` after ``warmup`` calls."""
    check_repeats(repeats)
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {
        "median_s": statistics.median(samples),
        "min_s": min(samples),
        "repeats": repeats,
    }


def repro_config() -> dict:
    """Execution-strategy knobs active for this run.

    Captures every ``REPRO_*`` environment override plus the planner's
    effective serial cutovers and backend sets, so a committed report
    pins down exactly which execution strategy produced its numbers.
    """
    env = {k: v for k, v in sorted(os.environ.items())
           if k.startswith("REPRO_")}
    cfg: dict = {"env": env}
    try:
        from repro.plan.calibration import (
            DWT_BACKENDS, TIER1_BACKENDS, get_calibration,
        )
        from repro.plan.cutovers import (
            dwt_serial_cutover_samples, tier1_serial_cutover_blocks,
        )

        calib = get_calibration()
        cfg["tier1_backends"] = list(TIER1_BACKENDS)
        cfg["dwt_backends"] = list(DWT_BACKENDS)
        cfg["calibration_source"] = calib.source
        cfg["dwt_serial_cutover_samples"] = dwt_serial_cutover_samples(calib)
        cfg["tier1_serial_cutover_blocks"] = tier1_serial_cutover_blocks(calib)
    except Exception:  # pragma: no cover - bench must not die on import
        cfg["planner"] = "unavailable"
    return cfg


def machine_info(**extra) -> dict:
    """The shared ``machine`` block, plus benchmark-specific extras."""
    import numpy as np

    info = {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "repro_config": repro_config(),
    }
    info.update(extra)
    return info


def bench_report(benchmark: str, machine_extra: dict | None = None,
                 **sections) -> dict:
    """Assemble a report in the shared BENCH_*.json envelope."""
    report = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": benchmark,
        "machine": machine_info(**(machine_extra or {})),
    }
    report.update(sections)
    return report


def write_bench_json(report: dict, default_name: str,
                     output: str | None = None) -> str:
    """Write ``report`` to ``output`` or ``<repo root>/<default_name>``."""
    out_path = output or os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        default_name,
    )
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path}")
    return out_path
