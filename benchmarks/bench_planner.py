"""Execution-planner benchmark: does ``plan=auto`` beat hand tuning?

The planner's pitch (ISSUE 9) is that one calibration pass plus a cost
model replaces hand-tuned backend/worker picks per shape.  This bench
holds it to that on the two regimes where the right answer differs:

* a small image (<= 256^2), where the batched Tier-1 backend's low
  per-block overhead wins and any pooled dispatch is pure loss;
* a large image (>= 2048^2 x 3), where the batched backend's stacked
  working set falls out of cache and per-block vectorized coding wins.

For each shape it times a grid of hand-tuned configurations plus one
``plan="auto"`` encode (with a freshly measured calibration installed,
the documented ``repro calibrate`` flow) and gates:

* auto >= ``AUTO_VS_BEST_FLOOR`` x the best hand-tuned config,
* auto >= ``AUTO_VS_WORST_FLOOR`` x the worst hand-tuned config,
* cached-calibration load < ``CALIB_LOAD_BUDGET_S`` (the per-process
  startup path must never re-measure), and
* every configuration produced byte-identical codestreams (plans trade
  time, never bytes).

Usage::

    PYTHONPATH=src python benchmarks/bench_planner.py               # full
    PYTHONPATH=src python benchmarks/bench_planner.py --repeats 1   # CI
    PYTHONPATH=src python benchmarks/bench_planner.py --smoke       # quick

``--smoke`` shrinks both shapes so the whole run takes seconds; the
speedup gates are skipped there (at smoke sizes the configs are within
noise of each other by design) but identity and the load budget still
gate.  The reference Tier-1 coder is only in the small-shape grid — on
the large shape it would dominate wall time while teaching nothing (the
model already prices it ~4x slower).
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time

import statistics

from _util import add_repeats_flag, bench_report, check_repeats, \
    write_bench_json
from repro.image.synthetic import watch_face_image
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.params import EncoderParams

#: Gate floors (ISSUE 9 acceptance).
AUTO_VS_BEST_FLOOR = 0.9
AUTO_VS_WORST_FLOOR = 1.2
CALIB_LOAD_BUDGET_S = 0.100


def calibrate_and_time_load(full: bool) -> dict:
    """Measure this machine, install the calibration, time cache loads.

    Mirrors the production flow: ``repro calibrate`` writes the cache
    once; every later process start pays only a JSON load.  The cache is
    pointed at a temp path so the bench never clobbers a user's real
    ``~/.cache/repro/calibration.json``.
    """
    from repro.plan.calibration import (
        CALIBRATION_PATH_ENV, invalidate_memo, load_calibration,
        measure_calibration, save_calibration,
    )

    tmp = os.path.join(tempfile.mkdtemp(prefix="repro-bench-"),
                       "calibration.json")
    os.environ[CALIBRATION_PATH_ENV] = tmp
    invalidate_memo()
    calib = measure_calibration(quick=not full)
    save_calibration(calib, tmp)

    loads = []
    for _ in range(5):
        t0 = time.perf_counter()
        loaded = load_calibration(tmp)
        loads.append(time.perf_counter() - t0)
    assert loaded is not None, "freshly saved calibration failed to load"
    loads.sort()
    return {
        "mode": "full" if full else "quick",
        "measure_seconds": calib.measure_seconds,
        "load_median_s": loads[len(loads) // 2],
        "load_budget_s": CALIB_LOAD_BUDGET_S,
        "t1_per_sample": calib.t1_per_sample,
        "t1_per_sample_large": calib.t1_per_sample_large,
        "path": tmp,
    }


def selection_latency() -> float:
    """Median seconds for one plan decision (must be microscopic next to
    any encode — 'no per-request calibration cost after first run')."""
    from repro.plan.model import RequestShape, choose_plan

    shape = RequestShape(2048, 2048, 3)
    choose_plan(shape)  # warm the calibration memo
    samples = []
    for _ in range(20):
        t0 = time.perf_counter()
        choose_plan(shape)
        samples.append(time.perf_counter() - t0)
    samples.sort()
    return samples[len(samples) // 2]


def hand_grid(include_reference: bool) -> list:
    """(label, EncoderParams) hand-tuned candidates for one shape."""
    cores = os.cpu_count() or 1
    grid = []
    if include_reference:
        grid.append(("reference@1", EncoderParams(
            tier1_backend="reference", workers=1)))
    grid.append(("vectorized@1", EncoderParams(
        tier1_backend="vectorized", workers=1)))
    grid.append(("batched@1", EncoderParams(
        tier1_backend="batched", workers=1)))
    if cores > 1:
        grid.append((f"vectorized@{cores}", EncoderParams(
            tier1_backend="vectorized", workers=cores)))
        grid.append((f"batched@{cores}", EncoderParams(
            tier1_backend="batched", workers=cores)))
    return grid


def bench_shape(name: str, height: int, width: int, channels: int,
                repeats: int, include_reference: bool) -> dict:
    img = watch_face_image(height, width, channels=channels)
    out: dict = {
        "image": f"{height}x{width}x{channels}",
        "samples": height * width * channels,
        "hand_tuned": {},
    }
    # Round-robin timing: every config is visited once per round (one
    # warm-up round, then ``repeats`` timed rounds), so slow machine
    # drift on a shared box hits every config equally instead of
    # penalising whichever happened to run last.  Gate ratios use
    # ``min_s`` — the least-contended sample — for the same reason.
    grid = hand_grid(include_reference) + [
        ("auto", EncoderParams(plan="auto"))]
    codestreams = {}
    auto_plan = None
    for label, params in grid:  # warm-up round (also collects bytes)
        result = encode(img, params)
        codestreams[label] = result.codestream
        if label == "auto" and result.plan is not None:
            auto_plan = result.plan.plan.as_dict()
    samples: dict = {label: [] for label, _ in grid}
    for _ in range(repeats):
        for label, params in grid:
            t0 = time.perf_counter()
            encode(img, params)
            samples[label].append(time.perf_counter() - t0)
    timed = {
        label: {"median_s": statistics.median(v), "min_s": min(v),
                "repeats": repeats}
        for label, v in samples.items()
    }
    out["auto"] = timed.pop("auto")
    out["auto"]["plan"] = auto_plan
    out["hand_tuned"] = timed

    mins = {k: v["min_s"] for k, v in out["hand_tuned"].items()}
    best_label = min(mins, key=mins.get)
    worst_label = max(mins, key=mins.get)
    auto_s = out["auto"]["min_s"]
    out["best_hand"] = best_label
    out["worst_hand"] = worst_label
    out["auto_vs_best"] = mins[best_label] / auto_s if auto_s else 0.0
    out["auto_vs_worst"] = mins[worst_label] / auto_s if auto_s else 0.0
    first = next(iter(codestreams.values()))
    out["codestreams_identical"] = all(
        cs == first for cs in codestreams.values())
    print(f"[{name}] {out['image']}: auto {auto_s:.3f}s "
          f"({out['auto']['plan'] and out['auto']['plan']['tier1_backend']}"
          f"@{out['auto']['plan'] and out['auto']['plan']['workers']}), "
          f"best hand {best_label} {mins[best_label]:.3f}s, "
          f"worst {worst_label} {mins[worst_label]:.3f}s  ->  "
          f"auto/best {out['auto_vs_best']:.2f}x, "
          f"auto/worst {out['auto_vs_worst']:.2f}x, "
          f"identical={out['codestreams_identical']}")
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny shapes, speedup gates skipped (CI sanity)")
    ap.add_argument("--quick-calibrate", action="store_true",
                    help="quick calibration instead of the full suite; "
                         "implied by --smoke (the quick 2x2 solve on a "
                         "tiny image is too noisy to rank backends at the "
                         "gated shapes, so gated runs default to full)")
    ap.add_argument("--output", default=None,
                    help="JSON path (default: BENCH_planner.json at repo "
                         "root)")
    add_repeats_flag(ap)
    args = ap.parse_args(argv)
    repeats = check_repeats(args.repeats)

    calibration = calibrate_and_time_load(
        full=not (args.smoke or args.quick_calibrate))
    print(f"calibration ({calibration['mode']}): measured in "
          f"{calibration['measure_seconds']:.1f}s, cache load "
          f"{calibration['load_median_s'] * 1e3:.2f} ms "
          f"(budget {CALIB_LOAD_BUDGET_S * 1e3:.0f} ms)")
    plan_latency = selection_latency()
    print(f"plan selection latency: {plan_latency * 1e6:.0f} us/decision")

    if args.smoke:
        small = bench_shape("small", 128, 128, 1, repeats, True)
        large = bench_shape("large", 512, 512, 3, repeats, False)
    else:
        small = bench_shape("small", 256, 256, 1, repeats, True)
        large = bench_shape("large", 2048, 2048, 3, repeats, False)

    gates = {
        "auto_vs_best_floor": AUTO_VS_BEST_FLOOR,
        "auto_vs_worst_floor": AUTO_VS_WORST_FLOOR,
        "calib_load_ok": calibration["load_median_s"] < CALIB_LOAD_BUDGET_S,
        "identity_ok": (small["codestreams_identical"]
                        and large["codestreams_identical"]),
        "speedup_gates_applied": not args.smoke,
    }
    if not args.smoke:
        for name, shape in (("small", small), ("large", large)):
            gates[f"{name}_auto_vs_best_ok"] = (
                shape["auto_vs_best"] >= AUTO_VS_BEST_FLOOR)
            gates[f"{name}_auto_vs_worst_ok"] = (
                shape["auto_vs_worst"] >= AUTO_VS_WORST_FLOOR)
    gates["pass"] = all(v for k, v in gates.items() if k.endswith("_ok"))

    report = bench_report(
        "planner",
        smoke=args.smoke,
        calibration={k: v for k, v in calibration.items() if k != "path"},
        plan_selection_latency_s=plan_latency,
        small=small,
        large=large,
        gates=gates,
    )
    write_bench_json(report, "BENCH_planner.json", args.output)
    print("gates:", "PASS" if gates["pass"] else "FAIL",
          {k: v for k, v in gates.items() if isinstance(v, bool)})
    return 0 if gates["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
