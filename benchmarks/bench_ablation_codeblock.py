"""Ablation A4 — code block size: 64x64 (ours) vs 32x32 (Muta et al.).

Section 3.2: "Smaller code block size reduces the Local Store memory
requirements and enables double buffering, but increases the interaction
among the PPE and SPE threads.  This lowers the scalability of the
implementation."  This bench quantifies both sides: Local Store footprint
and queue-interaction overhead.
"""

from repro.baselines.muta import split_blocks_to_32
from repro.cell.localstore import LocalStore
from repro.cell.machine import SINGLE_CELL
from repro.cell.spe import SPECore
from repro.cell.workqueue import WorkerSpec, simulate_work_queue
from repro.core.calibration import DEFAULT_CALIBRATION
from repro.kernels.tier1_kernel import tier1_block_cost_s


def test_ablation_local_store_footprint(benchmark):
    def footprints():
        out = {}
        for cb in (32, 64):
            ls = LocalStore()
            # coefficients in, coded bytes out, state arrays, double buffers
            coeff = cb * cb * 4
            ls.alloc("coeff_in_a", coeff)
            ls.alloc("coeff_in_b", coeff)       # double buffering
            ls.alloc("state", cb * cb * 2)
            ls.alloc("out", coeff // 2)
            out[cb] = ls.used
        return out

    used = benchmark(footprints)
    print("\nAblation A4 — SPE Local Store footprint for Tier-1")
    for cb, bytes_used in used.items():
        print(f"{cb}x{cb} blocks: {bytes_used / 1024:.1f} KiB of 256 KiB")
    assert used[32] < used[64]  # Muta's motivation for 32x32 is real


def test_ablation_queue_interaction(benchmark, workload_frame):
    """...but 4x the blocks means 4x the queue traffic, hurting scalability."""
    stats = workload_frame
    spe = SPECore()
    cal = DEFAULT_CALIBRATION

    def makespans():
        out = {}
        for tag, blocks in (("64x64", stats.blocks),
                            ("32x32", split_blocks_to_32(stats.blocks))):
            costs = tuple(
                tier1_block_cost_s(b.total_symbols, b.height * b.width, spe, cal)
                for b in blocks
            )
            workers = [
                WorkerSpec(f"SPE{i}", costs, dequeue_overhead_s=cal.queue_dequeue_s)
                for i in range(SINGLE_CELL.num_spes)
            ]
            res = simulate_work_queue(len(blocks), workers)
            out[tag] = (len(blocks), res.makespan_s)
        return out

    res = benchmark(makespans)
    print("\nAblation A4 — Tier-1 work-queue makespan on 8 SPEs (HD frame)")
    for tag, (nblocks, t) in res.items():
        print(f"{tag}: {nblocks:>6} blocks -> {t * 1e3:8.1f} ms")
    n64, t64 = res["64x64"]
    n32, t32 = res["32x32"]
    # full 64x64 blocks quarter into four; the many sub-64 boundary blocks
    # of the scaled crop split less, so the factor lands between 1.5x and 4x
    assert n32 > 1.5 * n64
    overhead_32 = n32 * (cal.queue_dequeue_s + cal.tier1_block_overhead_s)
    overhead_64 = n64 * (cal.queue_dequeue_s + cal.tier1_block_overhead_s)
    print(f"interaction overhead: 32x32 {overhead_32*1e3:.1f} ms vs "
          f"64x64 {overhead_64*1e3:.1f} ms")
    assert t32 > t64  # the extra interactions cost real time
