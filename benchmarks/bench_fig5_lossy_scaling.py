"""Figure 5 — lossy encoding: execution time and speedup vs SPE count.

Paper shape targets: speedup 3.1 at 8 SPEs vs 1 SPE (well below the
lossless 6.6 because the rate allocation stage is sequential); the curve
flattens with more SPEs, with rate control ~60% of total at 16 SPE + 2 PPE.
"""

from repro.cell.machine import CellMachine
from repro.core.pipeline import PipelineModel

SPE_COUNTS = [1, 2, 4, 6, 8, 12, 16]


def _timeline(stats, spes: int, ppes: int):
    chips = 2 if (spes > 8 or ppes > 1) else 1
    machine = CellMachine(chips=chips, num_spes=spes, num_ppe_threads=ppes)
    return PipelineModel(machine, stats).simulate()


def test_fig5_lossy_scaling(benchmark, workload_lossy):
    stats = workload_lossy
    times = benchmark(
        lambda: {n: _timeline(stats, n, 1).total_s for n in SPE_COUNTS}
    )
    base = times[1]
    print("\nFigure 5 — lossy encoding time and speedup")
    print(f"{'SPEs':>5} {'time (s)':>10} {'speedup':>9}")
    for n in SPE_COUNTS:
        print(f"{n:>5} {times[n]:>10.3f} {base / times[n]:>9.2f}")
    s8 = base / times[8]
    print(f"speedup @8 SPEs: {s8:.2f} (paper: 3.1)")
    assert 2.5 <= s8 <= 4.5
    # flattening: the 8->16 gain is clearly sublinear
    assert times[8] / times[16] < 1.6


def test_fig5_rate_control_fraction(benchmark, workload_lossy):
    stats = workload_lossy
    tl = benchmark(lambda: _timeline(stats, 16, 2))
    frac = tl.fraction("rate_control")
    print(f"\nrate control share at 16 SPE + 2 PPE: {frac:.0%} (paper: ~60%)")
    print(tl.report())
    assert 0.45 <= frac <= 0.75


def test_fig5_lossy_flattens_vs_lossless(benchmark, workload_lossy, workload_lossless):
    def speedups():
        out = {}
        for tag, st in (("lossless", workload_lossless), ("lossy", workload_lossy)):
            out[tag] = (_timeline(st, 1, 1).total_s
                        / _timeline(st, 16, 2).total_s)
        return out

    s = benchmark(speedups)
    print(f"\nspeedup @16 SPE + 2 PPE: lossless {s['lossless']:.2f}, "
          f"lossy {s['lossy']:.2f}")
    assert s["lossy"] < 0.6 * s["lossless"]
