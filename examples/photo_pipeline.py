#!/usr/bin/env python
"""BMP-to-JPEG2000 pipeline with a simulated Cell/B.E. timing report.

Mirrors the paper's experiment: transcode a BMP photograph to JPEG2000 and
report the per-stage execution timeline on the simulated Cell/B.E. — the
Figure-2 work partitioning in action.

    python examples/photo_pipeline.py [input.bmp]

Without an argument, a synthetic watch-face BMP is generated first.
"""

import os
import sys
import tempfile

from repro.cell.machine import SINGLE_CELL, QS20_BLADE
from repro.core.parallel_encoder import CellJPEG2000Encoder
from repro.image.bmp import read_bmp, write_bmp
from repro.image.synthetic import watch_face_image
from repro.jpeg2000.decoder import decode
from repro.jpeg2000.params import EncoderParams


def main() -> None:
    if len(sys.argv) > 1:
        path = sys.argv[1]
    else:
        path = os.path.join(tempfile.gettempdir(), "waltham_dial_synthetic.bmp")
        write_bmp(path, watch_face_image(192, 192, channels=3))
        print(f"generated synthetic watch photo: {path}")

    image = read_bmp(path)
    print(f"read {path}: {image.shape}")

    for params, tag in (
        (EncoderParams.lossless_default(), "lossless"),
        (EncoderParams.lossy_rate(0.1), "lossy rate=0.1"),
    ):
        print(f"\n=== {tag} ===")
        encoder = CellJPEG2000Encoder(machine=SINGLE_CELL)
        result = encoder.encode(image, params)
        print(result.report())

        out = decode(result.codestream)
        if params.lossless:
            import numpy as np

            assert np.array_equal(out, image)
            print("decode: bit-exact ✓")

        # Re-price the same workload on the two-chip QS20 blade.
        blade = CellJPEG2000Encoder(machine=QS20_BLADE)
        tl = blade.simulate(result.encode_result)
        speedup = result.timeline.total_s / tl.total_s
        print(f"QS20 blade (16 SPE + 2 PPE): {tl.total_s * 1e3:.2f} ms "
              f"({speedup:.2f}x vs one chip)")


if __name__ == "__main__":
    main()
