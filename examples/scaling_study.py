#!/usr/bin/env python
"""Scaling study: Figures 4/5 style tables plus the loop-level ceiling.

Encodes a crop of the watch image, scales the workload statistics to the
paper's 28.3 MB test photo, and prints the lossless and lossy scaling
tables for 1-16 SPEs, the PPE-only baseline, the Pentium IV comparison,
and the Meerwald-style loop-level parallelization ceiling.

    python examples/scaling_study.py
"""

from repro.baselines.meerwald import meerwald_speedup
from repro.baselines.pentium4 import P4PipelineModel
from repro.cell.machine import CellMachine
from repro.core.pipeline import PipelineModel
from repro.core.stats import format_scaling_table, scaling_table
from repro.image.synthetic import watch_face_image
from repro.jpeg2000.encoder import encode, scale_workload
from repro.jpeg2000.params import EncoderParams

SPE_COUNTS = [1, 2, 4, 8, 12, 16]


def simulate(stats, spes: int, ppes: int = 1):
    chips = 2 if (spes > 8 or ppes > 1) else 1
    machine = CellMachine(chips=chips, num_spes=spes, num_ppe_threads=ppes)
    return PipelineModel(machine, stats).simulate()


def main() -> None:
    image = watch_face_image(160, 160, channels=3)
    print("encoding crop (the slow functional part, once per mode)...")
    for params, tag in (
        (EncoderParams.lossless_default(), "LOSSLESS"),
        (EncoderParams.lossy_rate(0.1), "LOSSY rate=0.1"),
    ):
        res = encode(image, params)
        stats = scale_workload(res.stats, 19)  # 3040x3040x3 ≈ 28.3 MB
        timelines = {n: simulate(stats, n) for n in SPE_COUNTS}
        rows = scaling_table(timelines)
        print("\n" + format_scaling_table(
            rows, f"{tag}: {stats.width}x{stats.height}x3 "
                  f"({stats.raw_bytes / 2**20:.1f} MB)"))

        ppe_only = PipelineModel(
            CellMachine(num_spes=0, num_ppe_threads=1), stats
        ).simulate()
        p4 = P4PipelineModel(stats).simulate()
        best = timelines[8]
        print(f"PPE-only: {ppe_only.total_s:.3f} s "
              f"({ppe_only.total_s / best.total_s:.2f}x slower than 8 SPE)")
        print(f"Pentium IV 3.2 GHz: {p4.total_s:.3f} s "
              f"({p4.total_s / best.total_s:.2f}x slower than 8 SPE)")
        print(f"Meerwald loop-level ceiling on 8 threads: "
              f"{meerwald_speedup(p4, 8):.2f}x "
              f"(vs our whole-pipeline {timelines[1].total_s / best.total_s:.2f}x)")


if __name__ == "__main__":
    main()
