#!/usr/bin/env python
"""DWT optimization explorer: the Section 4 story, step by step.

Shows, for the vertical filtering of one large column group:

1. the DMA traffic of naive vs interleaved vs merged lifting,
2. fixed-point vs floating-point kernel cost on the SPE,
3. the Local Store budget that makes deep buffering possible, and
4. functional equivalence of lifting and convolution formulations.

    python examples/dwt_explorer.py
"""

import numpy as np

from repro.baselines.convolution_dwt import conv_forward_97_1d
from repro.cell.localstore import LocalStore, max_buffer_depth
from repro.cell.machine import SINGLE_CELL
from repro.cell.spe import SPECore
from repro.core.pipeline import PipelineModel, PipelineOptions
from repro.image.synthetic import watch_face_image
from repro.jpeg2000.dwt import forward_97_1d
from repro.jpeg2000.encoder import encode, scale_workload
from repro.jpeg2000.fixmath import max_fixed_error_vs_float
from repro.jpeg2000.params import EncoderParams
from repro.kernels.dwt_kernels import DwtVariant, dwt_mix, vertical_dma_passes


def main() -> None:
    # 1 — DMA traffic per variant
    print("DMA passes over the column group per decomposition level:")
    print(f"{'variant':<14} {'lossless':>9} {'lossy':>7}")
    for v in DwtVariant:
        print(f"{v.value:<14} {vertical_dma_passes(v, True):>9.1f} "
              f"{vertical_dma_passes(v, False):>7.1f}")

    # 2 — fixed vs float on the SPE (Table 1's consequence)
    spe = SPECore()
    fixed = spe.seconds_per_element(dwt_mix(False, fixed_point=True))
    flt = spe.seconds_per_element(dwt_mix(False, fixed_point=False))
    print(f"\n9/7 kernel on one SPE: fixed {fixed * 1e9:.2f} ns/sample, "
          f"float {flt * 1e9:.2f} ns/sample ({fixed / flt:.2f}x)")
    rng = np.random.default_rng(0)
    x = rng.integers(-128, 128, (1024, 4)).astype(np.int32)
    print(f"numerical price of Q13 fixed point: max coefficient error "
          f"{max_fixed_error_vs_float(x):.5f}")

    # 3 — Local Store budgeting (why constant-footprint rows matter)
    ls = LocalStore()
    row_bytes = 1024 * 4  # one 1024-element int32 chunk row
    print(f"\nLocal Store: {ls.capacity // 1024} KiB total, "
          f"{ls.free // 1024} KiB free after code")
    print(f"a {row_bytes} B chunk row supports "
          f"{max_buffer_depth(row_bytes)}-deep buffering")

    # 4 — lifting == convolution, functionally
    sig = rng.standard_normal((257, 1)) * 100
    lo_l, hi_l = forward_97_1d(sig)
    lo_c, hi_c = conv_forward_97_1d(sig)
    err = max(np.abs(lo_l - lo_c).max(), np.abs(hi_l - hi_c).max())
    print(f"\nlifting vs convolution 9/7: max |diff| = {err:.2e} "
          "(identical transforms, half the arithmetic)")

    # 5 — end-to-end DWT stage time per variant on the big image
    res = encode(watch_face_image(128, 128, 3), EncoderParams.lossy_rate(0.1))
    stats = scale_workload(res.stats, 24)
    print(f"\nDWT stage on {stats.width}x{stats.height}x3, Cell 8 SPE:")
    for v in DwtVariant:
        tl = PipelineModel(SINGLE_CELL, stats,
                           PipelineOptions(dwt_variant=v)).simulate()
        print(f"  {v.value:<14} {tl.stage('dwt').wall_s * 1e3:8.2f} ms")


if __name__ == "__main__":
    main()
