#!/usr/bin/env python
"""Quickstart: encode and decode an image, lossless and lossy.

Runs the functional JPEG2000 codec on a synthetic watch-face photograph
(the stand-in for the paper's ``waltham_dial.bmp``), verifies the lossless
round trip bit for bit, and reports sizes and PSNR.

    python examples/quickstart.py
"""

import numpy as np

from repro.image.synthetic import watch_face_image
from repro.jpeg2000.decoder import decode
from repro.jpeg2000.encoder import encode
from repro.jpeg2000.params import EncoderParams


def psnr(a: np.ndarray, b: np.ndarray) -> float:
    mse = np.mean((a.astype(np.float64) - b.astype(np.float64)) ** 2)
    return float("inf") if mse == 0 else 10 * np.log10(255.0**2 / mse)


def main() -> None:
    image = watch_face_image(160, 160, channels=3)
    print(f"input: {image.shape[1]}x{image.shape[0]} RGB, {image.nbytes} bytes")

    # Lossless: the paper's default configuration (5/3 DWT + RCT).
    res = encode(image, EncoderParams.lossless_default())
    restored = decode(res.codestream)
    assert np.array_equal(restored, image), "lossless round trip must be exact"
    print(f"\nlossless: {len(res.codestream)} bytes "
          f"({res.compression_ratio:.2f}:1), round trip bit-exact ✓")

    # Lossy at rate 0.1: the paper's '-O mode=real -O rate=0.1'.
    res = encode(image, EncoderParams.lossy_rate(0.1))
    restored = decode(res.codestream)
    print(f"lossy 0.1: {len(res.codestream)} bytes "
          f"(target {0.1 * image.nbytes:.0f}), PSNR {psnr(restored, image):.1f} dB")

    # Tier-1 is the dominant workload — show the statistics the Cell
    # performance model consumes.
    st = res.stats
    symbols = sum(b.total_symbols for b in st.blocks)
    print(f"\nworkload: {len(st.blocks)} code blocks, "
          f"{symbols} Tier-1 decisions, {len(st.subbands)} subbands")


if __name__ == "__main__":
    main()
