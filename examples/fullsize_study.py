#!/usr/bin/env python
"""Price the paper's actual 28.3 MB image, end to end, without scaling.

Uses the vectorized Tier-1 workload estimator
(:mod:`repro.jpeg2000.tier1_stats`) to extract per-code-block statistics
from a real 3072x3072x3 synthetic watch photograph in seconds — no
statistics scaling — and prices it on every machine the paper evaluates.

    python examples/fullsize_study.py [--small]

``--small`` uses 1024x1024 for a faster demonstration.
"""

import sys
import time

from repro.baselines.pentium4 import P4PipelineModel
from repro.cell.machine import CellMachine, QS20_BLADE, SINGLE_CELL
from repro.core.pipeline import PipelineModel
from repro.image.synthetic import watch_face_image
from repro.jpeg2000.params import EncoderParams
from repro.jpeg2000.tier1_stats import estimate_workload


def main() -> None:
    size = 1024 if "--small" in sys.argv else 3072
    print(f"synthesizing {size}x{size}x3 watch photograph "
          f"({size * size * 3 / 2**20:.1f} MB)...")
    image = watch_face_image(size, size, channels=3)

    for params, tag in (
        (EncoderParams.lossless_default(), "LOSSLESS"),
        (EncoderParams.lossy_rate(0.1), "LOSSY rate=0.1"),
    ):
        t0 = time.time()
        stats = estimate_workload(image, params)
        symbols = sum(b.total_symbols for b in stats.blocks)
        print(f"\n=== {tag}: workload extracted in {time.time() - t0:.1f} s "
              f"({len(stats.blocks)} blocks, {symbols / 1e6:.1f} M Tier-1 "
              f"decisions) ===")

        rows = [
            ("Pentium IV 3.2 GHz", P4PipelineModel(stats).simulate()),
            ("PPE only", PipelineModel(
                CellMachine(num_spes=0, num_ppe_threads=1), stats).simulate()),
            ("Cell 1 SPE + PPE", PipelineModel(
                CellMachine(num_spes=1), stats).simulate()),
            ("Cell 8 SPE + PPE", PipelineModel(SINGLE_CELL, stats).simulate()),
            ("QS20 16 SPE + 2 PPE", PipelineModel(QS20_BLADE, stats).simulate()),
        ]
        base = rows[0][1].total_s
        print(f"{'machine':<22} {'time (s)':>9} {'vs P4':>7}")
        for name, tl in rows:
            print(f"{name:<22} {tl.total_s:>9.3f} {base / tl.total_s:>7.2f}")
        best = rows[3][1]
        print(f"Cell 8-SPE stage split: tier1 {best.fraction('tier1'):.0%}, "
              f"dwt {best.fraction('dwt'):.0%}, "
              f"rate {best.fraction('rate_control'):.0%}")


if __name__ == "__main__":
    main()
